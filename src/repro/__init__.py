"""repro — autonomic algorithmic skeletons using events.

A from-scratch Python reproduction of *Pabon & Henrio, "Self-Configuration
and Self-Optimization Autonomic Skeletons using Events"* (PMAM/PPoPP 2014):
a Skandium-style nestable skeleton library, the event-driven
separation-of-concerns layer it builds on, and the paper's autonomic layer
that guarantees a wall-clock-time goal by retuning the number of threads
*while a skeleton executes*.

Quickstart::

    from repro import Map, Seq, SimulatedPlatform, AutonomicController, WCTGoal

    skel = Map(split_fn, Seq(work_fn), merge_fn)
    platform = SimulatedPlatform(parallelism=1, cost_model=my_costs,
                                 max_parallelism=24)
    controller = AutonomicController(platform, skel, qos=QoS(wct=WCTGoal(9.5)))
    result = skel.compute(data, platform=platform)

See ``examples/quickstart.py`` for a complete runnable program.

This module is the **stable front door**: everything in ``__all__`` here
is the supported public API.  Submodules whose docstrings say "internal"
(wire protocols, pool plumbing, worker entry points) may change without
notice — import from ``repro`` directly.
"""

from .errors import (
    ADGError,
    AdmissionError,
    EstimateNotReadyError,
    ExecutionCancelledError,
    ExecutionError,
    MuscleExecutionError,
    MuscleTypeError,
    PlatformError,
    QoSError,
    RemoteProtocolError,
    ReproError,
    SchedulingError,
    ServiceError,
    SkeletonDefinitionError,
    StateMachineError,
    WorkerLostError,
    WorkloadError,
)
from .events import (
    CountingListener,
    Event,
    EventBus,
    EventRecorder,
    ExecutionScopedListener,
    GenericListener,
    LatchListener,
    Listener,
    LoggingListener,
    When,
    Where,
    split_by_execution,
)
from .runtime import (
    CallableCostModel,
    ConstantCostModel,
    CostModel,
    DistributedPlatform,
    PerItemCostModel,
    Platform,
    PlatformRegistry,
    PlatformSpec,
    ProcessPoolPlatform,
    ProcessSpec,
    RealClock,
    RemoteSpec,
    SimulatedDistributedPlatform,
    SimulatedPlatform,
    SimulatedSpec,
    SkeletonFuture,
    TableCostModel,
    ThreadPoolPlatform,
    VirtualClock,
    ZeroCostModel,
    available_backends,
    make_platform,
    request_resize,
    run,
    start_worker,
    submit,
)
from .skeletons import (
    Condition,
    DivideAndConquer,
    Execute,
    Farm,
    For,
    Fork,
    If,
    Map,
    Merge,
    Muscle,
    Pipe,
    Seq,
    Skeleton,
    Split,
    While,
    sequential_evaluate,
)
from .version import __version__

from .core import (
    ADG,
    Activity,
    AnalysisReport,
    AutonomicController,
    EstimatorRegistry,
    ExecutionAnalyzer,
    HistoryEstimator,
    Priority,
    QoS,
    WCTGoal,
    best_effort_schedule,
    limited_lp_schedule,
    minimal_lp_greedy,
    optimal_lp,
)
from .service import (
    AdmissionController,
    ExecutionHandle,
    ExecutionStatus,
    LPArbiter,
    ServiceStats,
    SkeletonService,
    TenantQuota,
)
from .obs import (
    FlightRecorder,
    MetricsRegistry,
    Observability,
    Tracer,
)

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "SkeletonDefinitionError",
    "MuscleTypeError",
    "ExecutionError",
    "MuscleExecutionError",
    "PlatformError",
    "RemoteProtocolError",
    "WorkerLostError",
    "SchedulingError",
    "ADGError",
    "EstimateNotReadyError",
    "QoSError",
    "StateMachineError",
    "WorkloadError",
    "ServiceError",
    "AdmissionError",
    "ExecutionCancelledError",
    # events
    "Event",
    "EventBus",
    "EventRecorder",
    "Listener",
    "GenericListener",
    "LoggingListener",
    "CountingListener",
    "LatchListener",
    "When",
    "Where",
    "ExecutionScopedListener",
    "split_by_execution",
    # skeletons
    "Skeleton",
    "Seq",
    "Farm",
    "Pipe",
    "While",
    "For",
    "If",
    "Map",
    "Fork",
    "DivideAndConquer",
    "Muscle",
    "Execute",
    "Split",
    "Merge",
    "Condition",
    "sequential_evaluate",
    # runtime
    "Platform",
    "SimulatedPlatform",
    "SimulatedDistributedPlatform",
    "DistributedPlatform",
    "ThreadPoolPlatform",
    "ProcessPoolPlatform",
    "PlatformRegistry",
    "PlatformSpec",
    "SimulatedSpec",
    "ProcessSpec",
    "RemoteSpec",
    "make_platform",
    "available_backends",
    "request_resize",
    "start_worker",
    "SkeletonFuture",
    "run",
    "submit",
    "RealClock",
    "VirtualClock",
    "CostModel",
    "ZeroCostModel",
    "ConstantCostModel",
    "TableCostModel",
    "CallableCostModel",
    "PerItemCostModel",
    # autonomic core
    "ADG",
    "Activity",
    "AnalysisReport",
    "AutonomicController",
    "EstimatorRegistry",
    "ExecutionAnalyzer",
    "HistoryEstimator",
    "Priority",
    "QoS",
    "WCTGoal",
    "best_effort_schedule",
    "limited_lp_schedule",
    "minimal_lp_greedy",
    "optimal_lp",
    # multi-tenant service
    "SkeletonService",
    "ExecutionHandle",
    "ExecutionStatus",
    "AdmissionController",
    "LPArbiter",
    "ServiceStats",
    "TenantQuota",
    # observability
    "Observability",
    "MetricsRegistry",
    "Tracer",
    "FlightRecorder",
]
