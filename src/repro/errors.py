"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the failing subsystem.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SkeletonDefinitionError",
    "MuscleTypeError",
    "ExecutionError",
    "MuscleExecutionError",
    "PlatformError",
    "PlatformShutdownError",
    "SchedulingError",
    "ADGError",
    "EstimateNotReadyError",
    "QoSError",
    "StateMachineError",
    "WorkloadError",
    "ServiceError",
    "AdmissionError",
    "ExecutionCancelledError",
]


class ReproError(Exception):
    """Base class of every exception raised by the library."""


class SkeletonDefinitionError(ReproError):
    """A skeleton was constructed with invalid structure or arguments."""


class MuscleTypeError(SkeletonDefinitionError):
    """A muscle of the wrong flavour was supplied to a skeleton."""


class ExecutionError(ReproError):
    """A skeleton execution failed."""


class MuscleExecutionError(ExecutionError):
    """A user muscle raised an exception during execution.

    The original exception is available both as ``__cause__`` and through
    :attr:`cause`; :attr:`muscle_name` identifies the failing muscle and
    :attr:`trace` holds the skeleton trace active when the failure happened.
    """

    def __init__(self, muscle_name: str, cause: BaseException, trace=()):
        super().__init__(f"muscle {muscle_name!r} raised {cause!r}")
        self.muscle_name = muscle_name
        self.cause = cause
        self.trace = tuple(trace)

    def __reduce__(self):
        # Default exception pickling replays ``args`` (the formatted
        # message) into ``__init__``, which does not match this signature;
        # rebuild from the structured fields instead so the error survives
        # the worker-process → parent hop intact.
        return (type(self), (self.muscle_name, self.cause, self.trace))


class PlatformError(ReproError):
    """An execution platform was misused or failed internally."""


class PlatformShutdownError(PlatformError):
    """Work was submitted to a platform that has been shut down."""


class SchedulingError(ReproError):
    """A scheduling computation received invalid input."""


class ADGError(ReproError):
    """An Activity Dependency Graph operation failed (e.g. a cycle)."""


class EstimateNotReadyError(ReproError):
    """An estimate was requested before any observation or initialization."""


class QoSError(ReproError):
    """A quality-of-service goal was declared with invalid parameters."""


class StateMachineError(ReproError):
    """A tracking state machine received an event it cannot accept."""


class WorkloadError(ReproError):
    """A workload generator or application muscle was misconfigured."""


class ServiceError(ReproError):
    """The multi-tenant skeleton service was misused or failed internally."""


class AdmissionError(ServiceError):
    """A submission was rejected by the service's admission controller.

    :attr:`reason` carries the admission decision's explanation (per-tenant
    quota exhausted, WCT goal predicted infeasible, service shutting
    down, ...).
    """

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class ExecutionCancelledError(ExecutionError):
    """An execution was cancelled through its service handle."""
