"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the failing subsystem.

Errors that cross an OS-process or socket boundary (the process pool, the
socket-distributed platform) must survive serialization: the pickle helpers
(:func:`pickle_safe_exception`) and the JSON helpers
(:func:`jsonable_error` / :func:`error_from_jsonable`) degrade gracefully
when a user exception cannot make the trip intact, preserving as much of
the original as possible instead of failing the transport itself.
"""

from __future__ import annotations

import pickle

__all__ = [
    "ReproError",
    "SkeletonDefinitionError",
    "MuscleTypeError",
    "ExecutionError",
    "MuscleExecutionError",
    "PlatformError",
    "PlatformShutdownError",
    "RemoteProtocolError",
    "WorkerLostError",
    "SchedulingError",
    "ADGError",
    "EstimateNotReadyError",
    "QoSError",
    "StateMachineError",
    "WorkloadError",
    "ServiceError",
    "AdmissionError",
    "ExecutionCancelledError",
    "DurabilityError",
    "pickle_safe_exception",
    "jsonable_error",
    "error_from_jsonable",
]


class ReproError(Exception):
    """Base class of every exception raised by the library."""


class SkeletonDefinitionError(ReproError):
    """A skeleton was constructed with invalid structure or arguments."""


class MuscleTypeError(SkeletonDefinitionError):
    """A muscle of the wrong flavour was supplied to a skeleton."""


class ExecutionError(ReproError):
    """A skeleton execution failed."""


class MuscleExecutionError(ExecutionError):
    """A user muscle raised an exception during execution.

    The original exception is available both as ``__cause__`` and through
    :attr:`cause`; :attr:`muscle_name` identifies the failing muscle and
    :attr:`trace` holds the skeleton trace active when the failure happened.
    """

    def __init__(self, muscle_name: str, cause: BaseException, trace=()):
        super().__init__(f"muscle {muscle_name!r} raised {cause!r}")
        self.muscle_name = muscle_name
        self.cause = cause
        self.trace = tuple(trace)

    def __reduce__(self):
        # Default exception pickling replays ``args`` (the formatted
        # message) into ``__init__``, which does not match this signature;
        # rebuild from the structured fields instead so the error survives
        # the worker-process → parent hop intact.
        return (type(self), (self.muscle_name, self.cause, self.trace))


class PlatformError(ReproError):
    """An execution platform was misused or failed internally."""


class PlatformShutdownError(PlatformError):
    """Work was submitted to a platform that has been shut down."""


class RemoteProtocolError(PlatformError):
    """A socket peer violated the distributed platform's wire protocol."""


class WorkerLostError(PlatformError):
    """A remote worker vanished (heartbeat timeout or dropped connection)."""


class SchedulingError(ReproError):
    """A scheduling computation received invalid input."""


class ADGError(ReproError):
    """An Activity Dependency Graph operation failed (e.g. a cycle)."""


class EstimateNotReadyError(ReproError):
    """An estimate was requested before any observation or initialization."""


class QoSError(ReproError):
    """A quality-of-service goal was declared with invalid parameters."""


class StateMachineError(ReproError):
    """A tracking state machine received an event it cannot accept."""


class WorkloadError(ReproError):
    """A workload generator or application muscle was misconfigured."""


class ServiceError(ReproError):
    """The multi-tenant skeleton service was misused or failed internally."""


class AdmissionError(ServiceError):
    """A submission was rejected by the service's admission controller.

    :attr:`reason` carries the admission decision's explanation (per-tenant
    quota exhausted, WCT goal predicted infeasible, service shutting
    down, ...).
    """

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class ExecutionCancelledError(ExecutionError):
    """An execution was cancelled through its service handle."""


class DurabilityError(ReproError):
    """A checkpoint/recovery operation failed (missing key, mismatched
    program fingerprint, corrupt or future-format checkpoint, ...)."""


# ---------------------------------------------------------------------------
# boundary-crossing helpers
#
# A worker process (pool pipe or remote socket) must never die because a
# *user* exception refuses to serialize; these helpers are the single
# treatment applied at every boundary.


def _safe_str(obj: object) -> str:
    """``str(obj)`` that survives a broken ``__str__``."""
    try:
        return str(obj)
    except Exception:
        try:
            return object.__repr__(obj)
        except Exception:  # pragma: no cover - pathological object
            return f"<unprintable {type(obj).__name__}>"


def pickle_safe_exception(exc: BaseException) -> BaseException:
    """Return *exc* if it survives a pickle round-trip, else a safe stand-in.

    A :class:`MuscleExecutionError` whose *cause* is the unpicklable part
    keeps its structured fields (muscle name, trace) with the cause
    replaced by a descriptive :class:`PlatformError`; anything else is
    replaced wholesale.  This is the treatment the process pool applies to
    muscle results, extended so the socket-distributed platform can use it
    for every payload (results, enrollment, heartbeats) as well.
    """
    try:
        pickle.loads(pickle.dumps(exc, protocol=pickle.HIGHEST_PROTOCOL))
        return exc
    except Exception:
        pass
    if isinstance(exc, MuscleExecutionError):
        cause = exc.cause
        safe_cause = PlatformError(
            f"original cause {type(cause).__name__} was not picklable: "
            f"{_safe_str(cause)!r}"
        )
        return MuscleExecutionError(exc.muscle_name, safe_cause, exc.trace)
    return PlatformError(
        f"original exception {type(exc).__name__} was not picklable: {_safe_str(exc)!r}"
    )


def jsonable_error(exc: BaseException) -> dict:
    """Encode *exc* as a JSON-safe mapping for the control plane.

    Used wherever an error must travel over the length-prefixed JSON
    control plane (enrollment rejections, heartbeat protocol errors):
    only the exception's type name and message cross the wire, both
    guaranteed to be plain strings.
    """
    return {"type": type(exc).__name__, "message": _safe_str(exc)}


def error_from_jsonable(payload: object) -> ReproError:
    """Inverse of :func:`jsonable_error`, resolving known library types.

    Unknown (user-defined) exception types come back as a
    :class:`RemoteProtocolError` carrying the original type name and
    message — the error stays catchable without importing arbitrary
    user code on the receiving side.
    """
    if not isinstance(payload, dict):
        return RemoteProtocolError(f"malformed error payload: {payload!r}")
    name = payload.get("type", "ReproError")
    message = payload.get("message", "")
    cls = globals().get(name)
    if isinstance(cls, type) and issubclass(cls, ReproError):
        try:
            return cls(message)
        except Exception:
            pass
    return RemoteProtocolError(f"{name}: {message}")
