"""Unit tests for the text/CSV visualization helpers."""

from repro.core.adg import ADG
from repro.core.schedule import best_effort_schedule
from repro.viz import (
    read_series_csv,
    render_adg,
    render_adg_with_schedule,
    render_timeline,
    render_two_timelines,
    write_series_csv,
)


def small_adg():
    adg = ADG()
    a = adg.add("fs", 2.0, [], start=0.0, end=2.0, role="split")
    b = adg.add("fe", 3.0, [a], start=2.0, role="execute")
    adg.add("fm", 1.0, [b], role="merge")
    return adg


class TestTimeline:
    def test_contains_peak(self):
        out = render_timeline([(0, 1), (1, 4), (2, 0)], "demo")
        assert "peak=4" in out
        assert "demo" in out

    def test_empty(self):
        assert "empty" in render_timeline([])

    def test_dimensions(self):
        out = render_timeline([(0, 2), (5, 1)], width=40, height=5)
        rows = [l for l in out.splitlines() if "┤" in l]
        assert len(rows) == 5

    def test_two_timelines_legend(self):
        out = render_two_timelines(
            [(0, 2), (10, 0)], [(0, 3), (5, 0)], "limited", "best effort"
        )
        assert "limited" in out and "best effort" in out


class TestADGRender:
    def test_lists_all_activities(self):
        out = render_adg(small_adg())
        assert out.count("\n") >= 3
        for name in ("fs", "fe", "fm"):
            assert name in out

    def test_statuses_shown(self):
        out = render_adg(small_adg())
        assert "finished" in out and "running" in out and "pending" in out

    def test_schedule_overlay_brackets_estimates(self):
        adg = small_adg()
        schedule = best_effort_schedule(adg, 2.5)
        out = render_adg_with_schedule(adg, schedule, title="t")
        assert "[" in out  # estimated times bracketed
        assert "wct=" in out


class TestSeriesCSV:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "series.csv"
        rows = write_series_csv(path, [(0.0, 1.0), (1.5, 3.0)], ("t", "lp"))
        assert rows == 2
        header, data = read_series_csv(path)
        assert header == ["t", "lp"]
        assert data == [(0.0, 1.0), (1.5, 3.0)]

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "a" / "b" / "series.csv"
        write_series_csv(path, [(1, 2)])
        assert path.exists()
