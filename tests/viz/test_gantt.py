"""Unit tests for the Gantt renderer + integration with the simulator."""

from repro import Map, Merge, Seq, SimulatedPlatform, Split, run
from repro.runtime.costmodel import ConstantCostModel
from repro.viz import render_gantt


class TestRendering:
    def test_empty(self):
        assert "empty" in render_gantt([])

    def test_lanes_per_core(self):
        log = [(0.0, 1.0, 0, "a"), (0.0, 1.0, 1, "b"), (1.0, 2.0, 0, "c")]
        out = render_gantt(log)
        assert "core  0" in out and "core  1" in out
        assert out.count("│") == 2

    def test_labels_written_into_spans(self):
        log = [(0.0, 10.0, 0, "mytask")]
        out = render_gantt(log, width=40)
        assert "mytask" in out

    def test_zero_duration_tick(self):
        log = [(1.0, 1.0, 0, "z"), (0.0, 2.0, 1, "w")]
        out = render_gantt(log, label_tasks=False)
        assert "|" in out

    def test_header_counts(self):
        log = [(0.0, 1.0, 0, "a"), (0.5, 1.5, 2, "b")]
        out = render_gantt(log)
        assert "2 tasks on 2 cores" in out


class TestSimulatorIntegration:
    def test_render_from_task_log(self):
        skel = Map(
            Split(lambda v: [v] * 4, name="fs"),
            Seq(lambda v: v),
            Merge(sum, name="fm"),
        )
        platform = SimulatedPlatform(
            parallelism=2, cost_model=ConstantCostModel(1.0), trace_tasks=True
        )
        run(skel, 1, platform)
        out = render_gantt(platform.task_log)
        assert "core  0" in out and "core  1" in out
        assert "6 tasks" in out  # split + 4 executes + merge
