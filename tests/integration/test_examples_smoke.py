"""Smoke tests: every shipped example must run to completion.

The examples are executable documentation; each asserts its own results
internally (goal met, functional correctness), so a zero exit status is a
meaningful check, not just an import test.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
SRC_DIR = Path(__file__).resolve().parents[2] / "src"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))

pytestmark = [pytest.mark.integration, pytest.mark.slow]


def test_examples_present():
    assert {
        "quickstart.py",
        "twitter_hashtags.py",
        "dac_mergesort.py",
        "events_logger.py",
        "distributed_workers.py",
        "distributed_localhost.py",
        "backend_matrix.py",
    } <= set(EXAMPLES)


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    # Prepend src/ so the examples import repro even when the package is
    # not installed and pytest was launched without PYTHONPATH=src (the
    # pytest ``pythonpath`` option does not reach subprocesses).
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC_DIR)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=240,
        env=env,
    )
    assert proc.returncode == 0, (
        f"{script} failed\nstdout:\n{proc.stdout[-2000:]}\n"
        f"stderr:\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{script} produced no output"
