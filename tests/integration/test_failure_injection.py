"""Failure injection: errors in muscles and listeners must surface once,
cleanly, on every platform, without wedging workers or barriers."""

import pytest

from repro import (
    DivideAndConquer,
    Map,
    Pipe,
    Seq,
    SimulatedPlatform,
    ThreadPoolPlatform,
    While,
    run,
)
from repro.errors import ExecutionError, MuscleExecutionError
from repro.events import When
from repro.runtime.costmodel import ConstantCostModel
from repro.runtime.interpreter import submit

pytestmark = pytest.mark.integration


def failing_after(n):
    """An execute muscle that fails on the (n+1)-th invocation."""
    state = {"count": 0}

    def fe(v):
        state["count"] += 1
        if state["count"] > n:
            raise RuntimeError(f"injected failure #{state['count']}")
        return v

    return fe


class TestMuscleFailures:
    def test_split_failure(self, sim):
        skel = Map(lambda v: 1 / 0, Seq(lambda v: v), sum)
        with pytest.raises(MuscleExecutionError):
            run(skel, 0, sim)

    def test_merge_failure(self, sim):
        skel = Map(lambda v: [v, v], Seq(lambda v: v), lambda rs: 1 / 0)
        with pytest.raises(MuscleExecutionError):
            run(skel, 0, sim)

    def test_one_branch_fails_mid_map(self, sim_timed):
        # 4 branches; the third execute raises.
        skel = Map(lambda v: [v] * 4, Seq(failing_after(2)), sum)
        with pytest.raises(MuscleExecutionError) as info:
            run(skel, 0, sim_timed)
        assert "injected" in str(info.value.cause)

    def test_condition_failure_in_while(self, sim):
        skel = While(lambda v: 1 / 0, Seq(lambda v: v))
        with pytest.raises(MuscleExecutionError):
            run(skel, 0, sim)

    def test_nested_dac_failure(self, sim):
        skel = DivideAndConquer(
            lambda v: v > 2,
            lambda v: [v - 1, v - 2],
            Seq(failing_after(1)),
            sum,
        )
        with pytest.raises(MuscleExecutionError):
            run(skel, 9, sim)

    def test_pipe_second_stage_failure_keeps_cause(self, sim):
        skel = Pipe(Seq(lambda v: v + 1), Seq(lambda v: v / 0))
        with pytest.raises(MuscleExecutionError) as info:
            run(skel, 1, sim)
        assert isinstance(info.value.cause, ZeroDivisionError)

    def test_remaining_tasks_dropped_after_failure(self):
        # After the failure, the queued sibling tasks must be skipped: the
        # execution's muscle-call count stays below the full fan-out.
        calls = []

        def fe(v):
            calls.append(v)
            if v == "boom":
                raise RuntimeError("boom")
            return v

        plat = SimulatedPlatform(parallelism=1, cost_model=ConstantCostModel(1.0))
        skel = Map(lambda v: ["boom"] + ["ok"] * 50, Seq(fe), lambda rs: rs)
        with pytest.raises(MuscleExecutionError):
            run(skel, 0, plat)
        assert len(calls) < 51

    def test_failure_does_not_poison_other_execution(self, sim):
        good = Seq(lambda v: v * 2)
        bad = Seq(lambda v: 1 / 0)
        bad_future = submit(bad, 1, sim)
        good_future = submit(good, 21, sim)
        with pytest.raises(MuscleExecutionError):
            bad_future.get()
        assert good_future.get() == 42


class TestListenerFailures:
    def test_listener_error_fails_execution(self, sim):
        # Listener exceptions are non-functional-code failures: they abort
        # the execution and surface unwrapped to the caller.
        sim.bus.add_callback(lambda e: 1 / 0, kind="seq", when=When.AFTER)
        with pytest.raises(ZeroDivisionError):
            run(Seq(lambda v: v), 0, sim)

    def test_non_propagating_bus_swallows(self):
        from repro.events.bus import EventBus

        plat = SimulatedPlatform(bus=EventBus(propagate_errors=False))
        plat.bus.add_callback(lambda e: 1 / 0, kind="seq")
        assert run(Seq(lambda v: v + 1), 1, plat) == 2


class TestThreadPoolFailures:
    def test_parallel_failure_resolves_future(self):
        with ThreadPoolPlatform(parallelism=4) as pool:
            skel = Map(lambda v: [v] * 8, Seq(failing_after(3)), sum)
            with pytest.raises(MuscleExecutionError):
                run(skel, 0, pool)
            # pool still serves new work afterwards
            assert run(Seq(lambda v: v + 1), 1, pool) == 2

    def test_every_future_resolves_under_failures(self):
        with ThreadPoolPlatform(parallelism=3) as pool:
            futures = []
            for i in range(12):
                if i % 3 == 0:
                    futures.append(submit(Seq(lambda v: 1 / 0), i, pool))
                else:
                    futures.append(submit(Seq(lambda v: v * 2), i, pool))
            for i, f in enumerate(futures):
                if i % 3 == 0:
                    with pytest.raises(MuscleExecutionError):
                        f.get(timeout=10)
                else:
                    assert f.get(timeout=10) == i * 2
