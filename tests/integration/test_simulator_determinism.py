"""Property tests: the simulator is bit-for-bit deterministic, including
under autonomic control and under the multi-tenant service."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import Priority, QoS, SimulatedPlatform, SkeletonService, run
from repro.core.controller import AutonomicController
from repro.events import EventRecorder
from repro.runtime.costmodel import ConstantCostModel
from tests.conftest import build_program, program_descriptions

pytestmark = pytest.mark.integration


def trace_run(desc, parallelism=3, controller_goal=None):
    platform = SimulatedPlatform(
        parallelism=parallelism,
        cost_model=ConstantCostModel(1.0),
        max_parallelism=8,
    )
    recorder = EventRecorder()
    platform.add_listener(recorder)
    skel = build_program(desc)
    controller = None
    if controller_goal is not None:
        try:
            controller = AutonomicController(
                platform, skel, qos=QoS.wall_clock(controller_goal, max_lp=8)
            )
        except Exception:
            # Programs containing If/Fork are rejected by the paper-mode
            # controller; run them uncontrolled.
            controller = None
    result = run(skel, 4, platform)
    events = [
        (e.label, e.index, round(e.timestamp, 9), e.worker) for e in recorder.events
    ]
    lp = platform.metrics.as_steps()
    decisions = (
        [(d.time, d.action, d.lp_after) for d in controller.decisions]
        if controller
        else []
    )
    return result, events, lp, decisions


def service_trace_run(seed, tenants=4):
    """One seeded multi-tenant service run on the simulator.

    Execution ids are process-global counters, so the trace is
    normalized to submission order before comparison.
    """
    rng = random.Random(seed)
    specs = []
    for i in range(tenants):
        qos = None
        if rng.random() < 0.7:
            qos = QoS.wall_clock(
                rng.uniform(3.0, 40.0),
                weight=rng.choice([0.5, 1.0, 4.0]),
                priority=rng.choice(
                    [Priority.BATCH, Priority.NORMAL, Priority.HIGH]
                ),
            )
        specs.append((rng.randint(0, 2**16), qos))

    platform = SimulatedPlatform(
        parallelism=1, cost_model=ConstantCostModel(1.0), max_parallelism=6
    )
    recorder = EventRecorder()
    platform.add_listener(recorder)
    service = SkeletonService(platform=platform, min_rebalance_interval=0.0)
    handles = [
        service.submit(
            build_program(("map", 3, ("seq", program_seed % 4))),
            program_seed,
            qos=qos,
            tenant=f"tenant-{i}",
        )
        for i, (program_seed, qos) in enumerate(specs)
    ]
    results = [h.result(timeout=60.0) for h in handles]
    index_of = {h.execution_id: i for i, h in enumerate(handles)}
    rebalances = [
        (
            r.time,
            r.trigger.split(":")[0],
            tuple(sorted((index_of[e], s) for e, s in r.shares.items())),
            r.total_lp,
            tuple(sorted(index_of[e] for e in r.cold)),
            tuple(sorted(index_of[e] for e in r.infeasible)),
            tuple(sorted((index_of[e], w) for e, w in r.weights.items())),
            tuple(sorted((index_of[e], p) for e, p in r.priorities.items())),
        )
        for r in service.arbiter.rebalances
    ]
    events = [
        (e.label, index_of.get(e.execution_id), round(e.timestamp, 9), e.worker)
        for e in recorder.events
    ]
    stats = [
        (t, s.completed, s.goals_met, s.goals_missed)
        for t, s in sorted(service.stats.tenants().items())
    ]
    service.shutdown(wait=False)
    return results, rebalances, events, stats


class TestServiceDeterminism:
    """Same seed + virtual clock => identical Rebalance log (ISSUE 3)."""

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10)
    def test_service_runs_identical(self, seed):
        assert service_trace_run(seed) == service_trace_run(seed)

    def test_rebalance_times_monotone(self):
        _results, rebalances, _events, _stats = service_trace_run(42)
        times = [r[0] for r in rebalances]
        assert times == sorted(times)
        assert len(rebalances) >= 2  # the arbiter actually ran


class TestDeterminism:
    @given(program_descriptions)
    def test_event_logs_identical(self, desc):
        assert trace_run(desc) == trace_run(desc)

    @given(program_descriptions)
    @settings(max_examples=15)
    def test_autonomic_runs_identical(self, desc):
        a = trace_run(desc, parallelism=1, controller_goal=5.0)
        b = trace_run(desc, parallelism=1, controller_goal=5.0)
        assert a == b

    @given(program_descriptions)
    @settings(max_examples=15)
    def test_virtual_time_nonnegative_monotone(self, desc):
        _result, events, _lp, _ = trace_run(desc)
        times = [t for _l, _i, t, _w in events]
        assert all(b >= a for a, b in zip(times, times[1:]))
        assert all(t >= 0 for t in times)
