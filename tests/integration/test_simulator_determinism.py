"""Property tests: the simulator is bit-for-bit deterministic, including
under autonomic control."""

import pytest
from hypothesis import given, settings

from repro import SimulatedPlatform, run
from repro.core.controller import AutonomicController
from repro.core.qos import QoS
from repro.events import EventRecorder
from repro.runtime.costmodel import ConstantCostModel
from tests.conftest import build_program, program_descriptions

pytestmark = pytest.mark.integration


def trace_run(desc, parallelism=3, controller_goal=None):
    platform = SimulatedPlatform(
        parallelism=parallelism,
        cost_model=ConstantCostModel(1.0),
        max_parallelism=8,
    )
    recorder = EventRecorder()
    platform.add_listener(recorder)
    skel = build_program(desc)
    controller = None
    if controller_goal is not None:
        try:
            controller = AutonomicController(
                platform, skel, qos=QoS.wall_clock(controller_goal, max_lp=8)
            )
        except Exception:
            # Programs containing If/Fork are rejected by the paper-mode
            # controller; run them uncontrolled.
            controller = None
    result = run(skel, 4, platform)
    events = [
        (e.label, e.index, round(e.timestamp, 9), e.worker) for e in recorder.events
    ]
    lp = platform.metrics.as_steps()
    decisions = (
        [(d.time, d.action, d.lp_after) for d in controller.decisions]
        if controller
        else []
    )
    return result, events, lp, decisions


class TestDeterminism:
    @given(program_descriptions)
    def test_event_logs_identical(self, desc):
        assert trace_run(desc) == trace_run(desc)

    @given(program_descriptions)
    @settings(max_examples=15)
    def test_autonomic_runs_identical(self, desc):
        a = trace_run(desc, parallelism=1, controller_goal=5.0)
        b = trace_run(desc, parallelism=1, controller_goal=5.0)
        assert a == b

    @given(program_descriptions)
    @settings(max_examples=15)
    def test_virtual_time_nonnegative_monotone(self, desc):
        _result, events, _lp, _ = trace_run(desc)
        times = [t for _l, _i, t, _w in events]
        assert all(b >= a for a, b in zip(times, times[1:]))
        assert all(t >= 0 for t in times)
