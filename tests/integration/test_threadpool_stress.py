"""Stress tests: concurrent submissions + live resizes on the real pools.

Parametrized over every real backend ("threads", "processes",
"distributed") through the platform registry — the same FIFO/resize semantics contract applies to
each, so the same stress program must survive on either.  Muscles are
module-level picklable callables so they cross the process boundary.
"""

import random
import threading
import time
from functools import partial

import pytest

from repro import Execute, Map, Merge, PlatformSpec, Seq, Split, make_platform
from repro.events.types import When, Where
from repro.runtime.interpreter import submit
from repro.skeletons import sequential_evaluate
from tests.conftest import px_iota

pytestmark = [pytest.mark.integration, pytest.mark.slow]

BACKENDS = ["threads", "processes", "distributed"]


def _fe(v):
    return v * 3 + 1


def make_program(width):
    return Map(
        Split(partial(px_iota, width=width), name="w"),
        Seq(Execute(_fe, name="fe")),
        Merge(sum, name="fm"),
    )


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


class TestStress:
    def test_many_concurrent_executions(self, backend):
        with make_platform(PlatformSpec(kind=backend, workers=4, max_workers=8)) as pool:
            programs = [make_program(w) for w in (1, 2, 5, 9)]
            futures = [
                (p, v, submit(p, v, pool))
                for v in range(25)
                for p in programs
            ]
            for program, value, future in futures:
                assert future.get(timeout=60) == sequential_evaluate(
                    make_program(len(program.split(0))), value
                )

    def test_resize_storm_under_load(self, backend):
        """Random grow/shrink while work streams through: no deadlock, no
        lost results, pool converges to the final target."""
        stop = threading.Event()
        # Worker churn is ~100x pricier for processes and distributed
        # sockets (fork/enroll/exit vs thread start/join); keep the storm
        # meaningful but bounded there.
        top = 12 if backend == "threads" else 6
        executions = 60 if backend == "threads" else 30
        pause = 0.002 if backend == "threads" else 0.01

        with make_platform(PlatformSpec(kind=backend, workers=2, max_workers=top)) as pool:
            def resizer():
                rng = random.Random(99)
                while not stop.is_set():
                    pool.set_parallelism(rng.randint(1, top))
                    time.sleep(pause)

            thread = threading.Thread(target=resizer, daemon=True)
            thread.start()
            try:
                program = make_program(6)
                expected = sequential_evaluate(make_program(6), 5)
                futures = [submit(program, 5, pool) for _ in range(executions)]
                results = [f.get(timeout=60) for f in futures]
                assert results == [expected] * executions
            finally:
                stop.set()
                thread.join(timeout=5)
            pool.set_parallelism(3)
            deadline = time.time() + 10
            while pool.live_workers != 3 and time.time() < deadline:
                time.sleep(0.01)
            assert pool.live_workers == 3

    def test_grow_then_shrink_never_loses_or_duplicates_tasks(self, backend):
        """Every muscle task of every execution runs exactly once across a
        grow-then-shrink cycle: counted via the AFTER events the platform
        emits exactly once per dispatched task."""
        width, executions = 8, 12
        program = make_program(width)
        expected = [sequential_evaluate(make_program(width), v) for v in range(executions)]
        with make_platform(PlatformSpec(kind=backend, workers=1, max_workers=8)) as pool:
            counts = {"seq_after": 0}
            lock = threading.Lock()

            def count(event):
                with lock:
                    counts["seq_after"] += 1
                return event.value

            pool.bus.add_callback(count, kind="seq", when=When.AFTER, where=Where.SKELETON)
            futures = [submit(program, v, pool) for v in range(executions)]
            pool.set_parallelism(8)  # grow under load
            time.sleep(0.05)
            pool.set_parallelism(2)  # shrink under load
            results = [f.get(timeout=60) for f in futures]
        assert results == expected  # nothing lost
        assert counts["seq_after"] == width * executions  # nothing double-run

    def test_metrics_consistent_after_stress(self, backend):
        with make_platform(PlatformSpec(kind=backend, workers=3, max_workers=6)) as pool:
            program = make_program(4)
            futures = [submit(program, i, pool) for i in range(20)]
            for f in futures:
                f.get(timeout=60)
            # Active counts recorded never exceed the allocated maximum.
            for sample in pool.metrics.samples:
                assert 0 <= sample.active <= 6
