"""Stress tests: concurrent submissions + live resizes on the real pool."""

import random
import threading
import time

import pytest

from repro import Execute, Map, Merge, Seq, Split, ThreadPoolPlatform
from repro.runtime.interpreter import submit
from repro.skeletons import sequential_evaluate

pytestmark = [pytest.mark.integration, pytest.mark.slow]


def make_program(width):
    return Map(
        Split(lambda v, w=width: [v + i for i in range(w)], name="w"),
        Seq(Execute(lambda v: v * 3 + 1, name="fe")),
        Merge(sum, name="fm"),
    )


class TestStress:
    def test_many_concurrent_executions(self):
        with ThreadPoolPlatform(parallelism=4, max_parallelism=8) as pool:
            programs = [make_program(w) for w in (1, 2, 5, 9)]
            futures = [
                (p, v, submit(p, v, pool))
                for v in range(25)
                for p in programs
            ]
            for program, value, future in futures:
                assert future.get(timeout=30) == sequential_evaluate(
                    make_program(len(program.split(0))), value
                )

    def test_resize_storm_under_load(self):
        """Random grow/shrink while work streams through: no deadlock, no
        lost results, pool converges to the final target."""
        stop = threading.Event()

        with ThreadPoolPlatform(parallelism=2, max_parallelism=12) as pool:
            def resizer():
                rng = random.Random(99)
                while not stop.is_set():
                    pool.set_parallelism(rng.randint(1, 12))
                    time.sleep(0.002)

            thread = threading.Thread(target=resizer, daemon=True)
            thread.start()
            try:
                program = make_program(6)
                expected = sequential_evaluate(make_program(6), 5)
                futures = [submit(program, 5, pool) for _ in range(60)]
                results = [f.get(timeout=30) for f in futures]
                assert results == [expected] * 60
            finally:
                stop.set()
                thread.join(timeout=5)
            pool.set_parallelism(3)
            deadline = time.time() + 5
            while pool.live_workers != 3 and time.time() < deadline:
                time.sleep(0.01)
            assert pool.live_workers == 3

    def test_metrics_consistent_after_stress(self):
        with ThreadPoolPlatform(parallelism=3, max_parallelism=6) as pool:
            program = make_program(4)
            futures = [submit(program, i, pool) for i in range(20)]
            for f in futures:
                f.get(timeout=30)
            # Active counts recorded never exceed the allocated maximum.
            for sample in pool.metrics.samples:
                assert 0 <= sample.active <= 6
