"""Property tests: every platform implements the same functional semantics.

For random skeleton programs over integers, the simulator (at several LP
values) and every *real* backend enumerated from the platform registry
(threads, processes, distributed sockets) must produce exactly the
result of the sequential
reference evaluator.
"""

import pytest
from hypothesis import given, settings

from repro import PlatformSpec, SimulatedPlatform, ThreadPoolPlatform, make_platform, run
from repro.events import EventRecorder
from repro.runtime.costmodel import ConstantCostModel
from repro.skeletons import sequential_evaluate
from tests.conftest import (
    build_picklable_program,
    build_program,
    picklable_program_descriptions,
    program_descriptions,
)

pytestmark = pytest.mark.integration

#: Real (OS-level) backends, as registered in the platform registry.
REAL_BACKENDS = ["threads", "processes", "distributed"]


class TestSimulatorSemantics:
    @given(program_descriptions)
    def test_matches_reference_lp1(self, desc):
        expected = sequential_evaluate(build_program(desc), 7)
        assert run(build_program(desc), 7, SimulatedPlatform(parallelism=1)) == expected

    @given(program_descriptions)
    def test_matches_reference_lp4(self, desc):
        expected = sequential_evaluate(build_program(desc), 7)
        platform = SimulatedPlatform(parallelism=4, cost_model=ConstantCostModel(1.0))
        assert run(build_program(desc), 7, platform) == expected

    @given(program_descriptions)
    def test_lp_invariant(self, desc):
        """Changing the LP never changes the functional result."""
        results = {
            run(
                build_program(desc),
                3,
                SimulatedPlatform(parallelism=lp, cost_model=ConstantCostModel(0.5)),
            )
            for lp in (1, 2, 8)
        }
        assert len(results) == 1

    @given(program_descriptions)
    def test_events_balanced(self, desc):
        platform = SimulatedPlatform(parallelism=2)
        recorder = EventRecorder()
        platform.add_listener(recorder)
        run(build_program(desc), 5, platform)
        assert recorder.is_balanced()
        assert recorder.timestamps_monotonic()


class TestThreadPoolSemantics:
    @given(program_descriptions)
    @settings(max_examples=10)
    def test_matches_reference(self, desc):
        expected = sequential_evaluate(build_program(desc), 7)
        with ThreadPoolPlatform(parallelism=3) as pool:
            assert run(build_program(desc), 7, pool) == expected

    @given(program_descriptions)
    @settings(max_examples=10)
    def test_events_balanced_on_threads(self, desc):
        with ThreadPoolPlatform(parallelism=3) as pool:
            recorder = EventRecorder()
            pool.add_listener(recorder)
            run(build_program(desc), 2, pool)
            assert recorder.is_balanced()


@pytest.mark.parametrize("backend", REAL_BACKENDS)
class TestRealBackendSemantics:
    """The shared semantics suite, run over every real backend by name.

    Programs come from the *picklable* builder so the identical skeleton
    runs unchanged on threads, on OS processes, and on socket workers.
    """

    @given(picklable_program_descriptions)
    @settings(max_examples=8)
    def test_matches_reference(self, backend, desc):
        expected = sequential_evaluate(build_picklable_program(desc), 7)
        with make_platform(PlatformSpec(kind=backend, workers=3)) as pool:
            assert run(build_picklable_program(desc), 7, pool) == expected

    @given(picklable_program_descriptions)
    @settings(max_examples=6)
    def test_events_balanced(self, backend, desc):
        with make_platform(PlatformSpec(kind=backend, workers=2)) as pool:
            recorder = EventRecorder()
            pool.add_listener(recorder)
            run(build_picklable_program(desc), 2, pool)
            assert recorder.is_balanced()

    @given(picklable_program_descriptions)
    @settings(max_examples=4)
    def test_lp_invariant(self, backend, desc):
        """Changing the LP never changes the functional result."""
        results = set()
        for lp in (1, 4):
            with make_platform(PlatformSpec(kind=backend, workers=lp)) as pool:
                results.add(run(build_picklable_program(desc), 3, pool))
        assert len(results) == 1
