"""Trace propagation: one trace identity from submit to result, everywhere.

The interpreter mints a trace context per execution (the service mints it
even earlier, at the submission boundary) and stamps it on every event it
emits — on all four backends, including across the distributed platform's
socket boundary, and including chunks that are *re-dispatched* after a
worker is killed mid-flight (the envelope blob, trace stamp included, is
kept until its results land).
"""

import os
import signal
import threading
import time
from functools import partial

import pytest

from repro import (
    EventRecorder,
    Execute,
    Map,
    Merge,
    PlatformSpec,
    QoS,
    RemoteSpec,
    Seq,
    SimulatedPlatform,
    SkeletonService,
    Split,
    make_platform,
    run,
)
from repro.obs import Observability, load_jsonl, trace_records
from repro.runtime.costmodel import ConstantCostModel
from repro.skeletons import sequential_evaluate
from tests.conftest import px_iota, px_sleep_echo, px_sum_mod

pytestmark = pytest.mark.integration

REAL_BACKENDS = ["threads", "processes", "distributed"]


def _map_program(width, duration=0.0):
    leaf = (
        Execute(partial(px_sleep_echo, duration=duration), name="leaf")
        if duration
        else Execute(px_echo, name="leaf")
    )
    return Map(
        Split(partial(px_iota, width=width), name="split"),
        Seq(leaf),
        Merge(px_sum_mod, name="merge"),
    )


def px_echo(v):
    return v


def _single_trace(events):
    """Assert every event carries the same non-None trace id; return it."""
    trace_ids = {e.trace_id for e in events}
    assert None not in trace_ids, "an event escaped without a trace stamp"
    assert len(trace_ids) == 1, f"expected one trace, saw {len(trace_ids)}"
    return trace_ids.pop()


class TestTraceIdentityOnSimulator:
    def test_events_share_one_trace(self):
        platform = SimulatedPlatform(parallelism=2, cost_model=ConstantCostModel(1.0))
        recorder = EventRecorder()
        platform.add_listener(recorder)
        run(_map_program(4), 3, platform)
        assert recorder.is_balanced()
        _single_trace(recorder.events)

    def test_distinct_executions_get_distinct_traces(self):
        platform = SimulatedPlatform(parallelism=2, cost_model=ConstantCostModel(1.0))
        traces = []
        for value in (1, 2):
            recorder = EventRecorder()
            platform.add_listener(recorder)
            run(_map_program(3), value, platform)
            traces.append(_single_trace(recorder.events))
            platform.bus.remove_listener(recorder)
        assert traces[0] != traces[1]

    def test_before_after_pairs_share_identity(self):
        platform = SimulatedPlatform(parallelism=2, cost_model=ConstantCostModel(1.0))
        recorder = EventRecorder()
        platform.add_listener(recorder)
        run(_map_program(4), 3, platform)
        for before, after in recorder.pairs():
            assert before.trace_id == after.trace_id
            assert before.span_id == after.span_id


@pytest.mark.parametrize("backend", REAL_BACKENDS)
class TestTraceIdentityOnRealBackends:
    def test_events_share_one_trace(self, backend):
        with make_platform(PlatformSpec(kind=backend, workers=3)) as pool:
            recorder = EventRecorder()
            pool.add_listener(recorder)
            run(_map_program(6), 3, pool)
            assert recorder.is_balanced()
            _single_trace(recorder.events)

    def test_before_after_pairs_share_identity(self, backend):
        with make_platform(PlatformSpec(kind=backend, workers=2)) as pool:
            recorder = EventRecorder()
            pool.add_listener(recorder)
            run(_map_program(4), 2, pool)
            for before, after in recorder.pairs():
                assert before.trace_id == after.trace_id
                assert before.span_id == after.span_id


class TestDistributedWorkerSpans:
    """The wire crossing: worker-side muscle spans re-emitted in-process."""

    def test_muscle_spans_carry_the_execution_trace(self):
        with make_platform(PlatformSpec(kind="distributed", workers=2)) as pool:
            obs = Observability(sample_rate=1.0)
            obs.attach(pool)
            recorder = EventRecorder()
            pool.add_listener(recorder)
            run(_map_program(6), 3, pool)
            trace_id = _single_trace(recorder.events)
            spans = [s for s in pool.tracer.finished() if s.name == "muscle"]
            assert spans, "no worker muscle spans crossed the wire"
            assert {s.trace_id for s in spans} == {trace_id}
            for span in spans:
                assert span.attrs.get("worker_pid") is not None
                assert span.end >= span.start

    def test_trace_survives_sigkill_redispatch(self):
        """A chunk re-dispatched after SIGKILL keeps its original trace."""
        program = _map_program(9, duration=0.15)
        expected = sequential_evaluate(program, 4)
        spec = PlatformSpec(
            kind="distributed",
            workers=3,
            batching=2,
            remote=RemoteSpec(heartbeat_interval=0.05, heartbeat_timeout=0.4),
        )
        with make_platform(spec) as platform:
            obs = Observability(sample_rate=1.0)
            obs.attach(platform)
            recorder = EventRecorder()
            platform.add_listener(recorder)
            results = []
            driver = threading.Thread(
                target=lambda: results.append(run(program, 4, platform))
            )
            driver.start()
            victim = _wait_for_busy_worker(platform)
            os.kill(victim, signal.SIGKILL)
            driver.join(timeout=60)
            assert not driver.is_alive(), "execution hung after worker loss"
            assert results == [expected]
            assert platform.lost_workers == 1
            trace_id = _single_trace(recorder.events)
            spans = [s for s in platform.tracer.finished() if s.name == "muscle"]
            assert spans, "no worker spans survived the re-dispatch"
            # Every span — including those from the replacement worker that
            # re-ran the victim's chunk — belongs to the original trace.
            assert {s.trace_id for s in spans} == {trace_id}


def _wait_for_busy_worker(platform, deadline=10.0):
    limit = time.monotonic() + deadline
    while time.monotonic() < limit:
        busy = platform.busy_worker_pids()
        if busy:
            return busy[0]
        time.sleep(0.005)
    raise AssertionError("no worker ever became busy")


class TestServiceTraceEndToEnd:
    """ISSUE acceptance: one trace id queryable end to end from JSONL."""

    def test_jsonl_export_answers_a_trace_query(self, tmp_path):
        obs = Observability(sample_rate=1.0)
        with make_platform(PlatformSpec(kind="distributed", workers=2)) as pool:
            service = SkeletonService(platform=pool, capacity=2, observability=obs)
            handle = service.submit(
                _map_program(6), 3, qos=QoS.wall_clock(100.0), tenant="acme"
            )
            assert handle.result() == sequential_evaluate(_map_program(6), 3)
            service.shutdown()
        path = tmp_path / "flight.jsonl"
        obs.export_jsonl(str(path))
        records = load_jsonl(str(path))
        roots = [
            r
            for r in records
            if r["type"] == "span"
            and r.get("name") == "execution"
            and r.get("attrs", {}).get("execution_id") == handle.execution_id
        ]
        assert len(roots) == 1
        trace_id = roots[0]["trace_id"]
        trace = trace_records(records, trace_id)
        kinds = {r["type"] for r in trace}
        assert kinds == {"span", "event"}
        names = {r.get("name") for r in trace if r["type"] == "span"}
        # submit → ... → remote muscle execution → result, one trace id.
        assert "execution" in names
        assert "muscle" in names
        events = [r for r in trace if r["type"] == "event"]
        assert events and all(r["trace_id"] == trace_id for r in events)
