"""End-to-end autonomic scenarios: the paper's claims as executable tests."""

import pytest

from repro import SimulatedPlatform, ThreadPoolPlatform, run
from repro.bench import run_twitter_scenario
from repro.core.controller import AutonomicController
from repro.core.qos import QoS
from repro.events import LatchListener
from repro.workloads import MergesortApp, MonteCarloPiApp

pytestmark = [pytest.mark.integration, pytest.mark.slow]


class TestPaperScenarios:
    """The three executions of the paper's Section 5 (Figures 5–7)."""

    @pytest.fixture(scope="class")
    def scenarios(self):
        s1 = run_twitter_scenario("goal_without_init", goal=9.5, n_tweets=400)
        s2 = run_twitter_scenario(
            "goal_with_init", goal=9.5, n_tweets=400,
            initialize_from=s1.estimate_snapshot,
        )
        s3 = run_twitter_scenario("goal_10_5", goal=10.5, n_tweets=400)
        return s1, s2, s3

    def test_all_results_correct(self, scenarios):
        assert all(s.correct for s in scenarios)

    def test_all_goals_met(self, scenarios):
        assert all(s.met_goal for s in scenarios)

    def test_lp_stays_one_during_io_split(self, scenarios):
        """No extra thread is activated during the 6.4 s I/O-bound first
        split (paper: 'there is no need for more than one thread')."""
        for s in scenarios:
            rise = s.first_active_rise
            assert rise is None or rise >= 6.4 - 1e-6

    def test_cold_analysis_at_first_merge(self, scenarios):
        s1, _s2, _s3 = scenarios
        assert s1.first_increase_time == pytest.approx(7.63, abs=0.1)

    def test_warm_reacts_earlier_and_finishes_faster(self, scenarios):
        s1, s2, _s3 = scenarios
        assert s2.first_active_rise < s1.first_increase_time
        assert s2.finish_wct < s1.finish_wct

    def test_looser_goal_uses_fewer_threads(self, scenarios):
        s1, _s2, s3 = scenarios
        assert s3.peak_active < s1.peak_active

    def test_decrease_slower_than_increase(self, scenarios):
        """The halving decrease policy: any decrease shrinks to exactly
        half the previous LP (never more aggressively)."""
        for s in scenarios:
            for d in s.decisions:
                if d.action == "decrease" and d.changed:
                    assert d.lp_after == d.lp_before // 2


class TestOtherWorkloadsAutonomic:
    def test_mergesort_meets_goal(self):
        import random

        app = MergesortApp(threshold=1_000)
        data = random.Random(3).sample(range(100_000), 16_000)
        platform = SimulatedPlatform(
            parallelism=1, cost_model=app.cost_model(per_item=1e-4),
            max_parallelism=16,
        )
        AutonomicController(
            platform, app.skeleton, qos=QoS.wall_clock(2.0, max_lp=16, margin=0.2)
        )
        result = app.skeleton.compute(data, platform=platform)
        assert result == sorted(data)
        assert platform.now() <= 2.0 + 1e-9
        assert platform.metrics.peak_active() > 1

    def test_montecarlo_meets_goal(self):
        app = MonteCarloPiApp(batches=16)
        platform = SimulatedPlatform(
            parallelism=1, cost_model=app.cost_model(per_sample=1e-5),
            max_parallelism=16,
        )
        controller = AutonomicController(
            platform, app.skeleton, qos=QoS.wall_clock(0.5, max_lp=16)
        )
        # Single-level map: the merge runs last, so warm-start its estimate.
        controller.estimators.time_estimator(app.fm_reduce).initialize(1e-4)
        pi = app.skeleton.compute((2014, 80_000), platform=platform)
        assert abs(pi - 3.1416) < 0.05
        assert platform.now() <= 0.5 + 1e-9


class TestAutonomicOnRealThreads:
    def test_controller_raises_pool_size(self):
        """On the real pool the controller reacts to real timestamps; with
        sleep-bound muscles (which release the GIL) the LP increase is
        observable and the run completes correctly."""
        import time

        from repro import Execute, Map, Merge, Seq, Split

        fs = Split(lambda v: [v] * 6, name="fs")
        fe = Execute(lambda v: (time.sleep(0.05), v)[1], name="fe")
        fm = Merge(sum, name="fm")
        skel = Map(fs, Seq(fe), fm)

        with ThreadPoolPlatform(parallelism=1, max_parallelism=6) as platform:
            controller = AutonomicController(
                platform, skel, qos=QoS.wall_clock(0.25, max_lp=6)
            )
            # Warm-start everything: real-thread timing is noisy and the
            # merge-only-at-the-end issue applies here too.
            controller.estimators.time_estimator(fs).initialize(0.001)
            controller.estimators.card_estimator(fs).initialize(6)
            controller.estimators.time_estimator(fe).initialize(0.05)
            controller.estimators.time_estimator(fm).initialize(0.001)
            grew = LatchListener(lambda e: platform.get_parallelism() > 1)
            platform.add_listener(grew)
            result = run(skel, 7, platform)
            assert result == 42
            assert grew.wait(timeout=1.0)
            assert any(d.action == "increase" for d in controller.decisions)
