"""Streaming executions: several top-level inputs in flight at once.

The controller's ADG analysis merges every unfinished root (concurrent
top-level executions share the worker pool), and the farm pattern exists
precisely for this streaming use."""

import pytest

from repro import Execute, Farm, Map, Merge, Seq, SimulatedPlatform, Split
from repro.core.controller import AutonomicController
from repro.core.qos import QoS
from repro.runtime.costmodel import TableCostModel
from repro.runtime.interpreter import submit

pytestmark = pytest.mark.integration


def make_app():
    fs = Split(lambda xs: [xs] * 4, name="fs")
    fe = Execute(lambda xs: 1, name="fe")
    fm = Merge(sum, name="fm")
    inner = Map(fs, Seq(fe), fm)
    return Farm(inner), TableCostModel({fs: 0.5, fe: 1.0, fm: 0.1})


class TestConcurrentRoots:
    def test_all_futures_resolve_correctly(self):
        farm, costs = make_app()
        platform = SimulatedPlatform(parallelism=2, cost_model=costs)
        futures = [submit(farm, [i], platform) for i in range(5)]
        assert [f.get() for f in futures] == [4] * 5

    def test_merged_adg_covers_all_roots(self):
        farm, costs = make_app()
        platform = SimulatedPlatform(parallelism=2, cost_model=costs)
        controller = AutonomicController(
            platform, farm, qos=QoS.wall_clock(100.0, max_lp=8)
        )
        # Projection needs estimates; warm-start them so the merged ADG is
        # buildable from the very first event.
        controller.estimators.time_estimator(farm.subskel.split).initialize(0.5)
        controller.estimators.card_estimator(farm.subskel.split).initialize(4)
        controller.estimators.time_estimator(
            farm.subskel.subskel.execute
        ).initialize(1.0)
        controller.estimators.time_estimator(farm.subskel.merge).initialize(0.1)
        futures = [submit(farm, [i], platform) for i in range(3)]
        sizes = []
        platform.bus.add_callback(
            lambda e: (
                sizes.append(
                    len(controller.machines.project_roots(platform.now())[0])
                ),
                e.value,
            )[1]
        )
        for f in futures:
            f.get()
        # While at least two roots were unfinished, the merged ADG must
        # exceed one root's activity count (1 split + 4 fe + 1 merge = 6).
        assert max(sizes) > 6

    def test_streamed_goal_met(self):
        """Three streamed inputs, one shared deadline: the controller
        raises the LP so the whole stream finishes inside the earliest
        execution's deadline."""
        farm, costs = make_app()
        platform = SimulatedPlatform(
            parallelism=1, cost_model=costs, max_parallelism=16
        )
        controller = AutonomicController(
            platform, farm, qos=QoS.wall_clock(6.5, max_lp=16)
        )
        # Warm start: the merge of each stream element runs at its end.
        controller.estimators.time_estimator(farm.subskel.split).initialize(0.5)
        controller.estimators.card_estimator(farm.subskel.split).initialize(4)
        controller.estimators.time_estimator(
            farm.subskel.subskel.execute
        ).initialize(1.0)
        controller.estimators.time_estimator(farm.subskel.merge).initialize(0.1)
        futures = [submit(farm, [i], platform) for i in range(3)]
        assert [f.get() for f in futures] == [4] * 3
        # Sequential would be 3 * (0.5 + 4 + 0.1) = 13.8 — the goal forces
        # parallel execution across the stream.
        assert platform.now() <= 6.5 + 1e-9
        assert platform.metrics.peak_active() > 1

    def test_roots_finish_flags(self):
        farm, costs = make_app()
        platform = SimulatedPlatform(parallelism=2, cost_model=costs)
        controller = AutonomicController(
            platform, farm, qos=QoS.wall_clock(1000.0, max_lp=4)
        )
        futures = [submit(farm, [i], platform) for i in range(4)]
        for f in futures:
            f.get()
        assert len(controller.machines.roots) == 4
        assert controller.machines.unfinished_roots() == []
