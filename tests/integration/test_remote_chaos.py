"""Chaos tests: the distributed backend must survive losing workers.

Workers are killed (SIGKILL) or wedged (SIGSTOP) mid-execution; the
master must detect the loss — socket EOF for kills, heartbeat timeout
for hangs — re-dispatch the in-flight chunk, and finish with the right
answer and balanced events.  Muscles are pure, so at-least-once
re-execution is semantically safe.
"""

import os
import signal
import threading
import time
from functools import partial

from repro import (
    EventRecorder,
    Execute,
    Map,
    Merge,
    PlatformSpec,
    RemoteSpec,
    Seq,
    Split,
    make_platform,
    run,
)
from repro.skeletons import sequential_evaluate
from tests.conftest import px_iota, px_sleep_echo, px_sum_mod


def _slow_map(width, duration):
    return Map(
        Split(partial(px_iota, width=width), name="csplit"),
        Seq(Execute(partial(px_sleep_echo, duration=duration), name="cleaf")),
        Merge(px_sum_mod, name="csum"),
    )


def _chaos_spec(workers=3):
    return PlatformSpec(
        kind="distributed",
        workers=workers,
        batching=2,
        remote=RemoteSpec(heartbeat_interval=0.05, heartbeat_timeout=0.4),
    )


def _wait_for_busy_worker(platform, deadline=10.0):
    """Return the pid of a worker currently holding a chunk."""
    limit = time.monotonic() + deadline
    while time.monotonic() < limit:
        busy = platform.busy_worker_pids()
        if busy:
            return busy[0]
        time.sleep(0.005)
    raise AssertionError("no worker ever became busy")


class TestWorkerLoss:
    def test_sigkill_mid_execution_is_survived(self):
        """A killed worker's in-flight chunk is re-dispatched, not lost."""
        program = _slow_map(9, 0.15)
        expected = sequential_evaluate(program, 4)
        with make_platform(_chaos_spec()) as platform:
            recorder = EventRecorder()
            platform.add_listener(recorder)
            results = []
            driver = threading.Thread(
                target=lambda: results.append(run(program, 4, platform))
            )
            driver.start()
            victim = _wait_for_busy_worker(platform)
            os.kill(victim, signal.SIGKILL)
            driver.join(timeout=60)
            assert not driver.is_alive(), "execution hung after worker loss"
            assert results == [expected]
            assert platform.lost_workers == 1
            assert recorder.is_balanced()
            assert victim not in platform.worker_pids().values()

    def test_sigstop_triggers_heartbeat_timeout(self):
        """A wedged (not dead) worker is detected by heartbeat silence."""
        program = _slow_map(9, 0.15)
        expected = sequential_evaluate(program, 2)
        stopped = []
        try:
            with make_platform(_chaos_spec()) as platform:
                results = []
                driver = threading.Thread(
                    target=lambda: results.append(run(program, 2, platform))
                )
                driver.start()
                victim = _wait_for_busy_worker(platform)
                os.kill(victim, signal.SIGSTOP)
                stopped.append(victim)
                driver.join(timeout=60)
                assert not driver.is_alive(), "execution hung after worker stall"
                assert results == [expected]
                assert platform.lost_workers == 1
        finally:
            for pid in stopped:
                try:
                    os.kill(pid, signal.SIGCONT)
                    os.kill(pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass

    def test_pool_recovers_after_loss(self):
        """After a loss the pool respawns and later work still runs."""
        program = _slow_map(6, 0.05)
        expected = sequential_evaluate(program, 1)
        with make_platform(_chaos_spec(workers=2)) as platform:
            assert run(program, 1, platform) == expected
            victim = next(iter(platform.worker_pids().values()))
            os.kill(victim, signal.SIGKILL)
            # The next execution forces the dispatcher to respawn capacity.
            assert run(program, 1, platform) == expected
            assert platform.lost_workers == 1
            deadline = time.monotonic() + 10
            while platform.live_workers < 2:
                assert time.monotonic() < deadline, "pool never respawned"
                time.sleep(0.01)

    def test_two_losses_in_one_execution(self):
        program = _slow_map(12, 0.1)
        expected = sequential_evaluate(program, 3)
        with make_platform(_chaos_spec()) as platform:
            results = []
            driver = threading.Thread(
                target=lambda: results.append(run(program, 3, platform))
            )
            driver.start()
            for _ in range(2):
                victim = _wait_for_busy_worker(platform)
                os.kill(victim, signal.SIGKILL)
                time.sleep(0.1)
            driver.join(timeout=60)
            assert not driver.is_alive()
            assert results == [expected]
            assert platform.lost_workers == 2
