"""Unit tests for checkpoint stores (atomic commits, corruption, pruning)."""

import json

import pytest

from repro.durability import (
    CHECKPOINT_VERSION,
    Checkpoint,
    DirectoryStore,
    MemoryStore,
)
from repro.durability.store import KIND_BOUNDARY, KIND_FINAL, _key_dirname
from repro.errors import DurabilityError


def ckpt(key="job", kind=KIND_BOUNDARY, value=41, **kw):
    return Checkpoint(key=key, kind=kind, fingerprint="f" * 16, value=value, **kw)


@pytest.fixture(params=["dir", "mem"])
def store(request, tmp_path):
    if request.param == "dir":
        return DirectoryStore(tmp_path / "ckpts")
    return MemoryStore()


class TestStoreContract:
    def test_save_assigns_monotonic_seq(self, store):
        assert store.save(ckpt(value=1)).seq == 1
        assert store.save(ckpt(value=2)).seq == 2
        assert store.save(ckpt(key="other")).seq == 1

    def test_latest_and_history(self, store):
        store.save(ckpt(value="a"))
        store.save(ckpt(value="b", kind=KIND_FINAL))
        latest = store.latest("job")
        assert latest.value == "b" and latest.kind == KIND_FINAL
        assert [c.value for c in store.history("job")] == ["a", "b"]
        assert store.latest("missing") is None
        assert store.history("missing") == []

    def test_value_round_trips_arbitrary_objects(self, store):
        value = {"nested": [1, (2, 3)], "s": {"x"}}
        store.save(ckpt(value=value))
        assert store.latest("job").value == value

    def test_keys_and_delete(self, store):
        store.save(ckpt(key="a"))
        store.save(ckpt(key="b"))
        assert set(store.keys()) == {"a", "b"}
        store.delete("a")
        assert store.latest("a") is None
        assert set(store.keys()) == {"b"}

    def test_progress_and_metadata_preserved(self, store):
        store.save(
            ckpt(
                progress={"completed_stages": 3},
                qos={"wct": {"seconds": 9.0, "margin": 0.0}},
                elapsed=1.5,
                meta={"tenant": "t0"},
            )
        )
        latest = store.latest("job")
        assert latest.progress == {"completed_stages": 3}
        assert latest.qos["wct"]["seconds"] == 9.0
        assert latest.elapsed == 1.5
        assert latest.meta["tenant"] == "t0"


class TestDirectoryStore:
    def test_commit_is_atomic_no_temp_residue(self, tmp_path):
        store = DirectoryStore(tmp_path)
        store.save(ckpt())
        files = list((tmp_path / "job").iterdir())
        assert [p.name for p in files] == ["ckpt-00000001.json"]

    def test_corrupt_files_skipped_not_fatal(self, tmp_path):
        store = DirectoryStore(tmp_path)
        store.save(ckpt(value="good"))
        # A torn write from a pre-atomic-commit crash.
        (tmp_path / "job" / "ckpt-00000002.json").write_text('{"version": 1, "trunc')
        latest = store.latest("job")
        assert latest.value == "good"
        assert store.corrupt_skipped == 1

    def test_future_version_rejected_on_load(self, tmp_path):
        store = DirectoryStore(tmp_path)
        saved = store.save(ckpt(value="v1"))
        path = tmp_path / "job" / f"ckpt-{saved.seq + 1:08d}.json"
        doc = ckpt(value="v2").to_json_dict()
        doc["version"] = CHECKPOINT_VERSION + 1
        path.write_text(json.dumps(doc))
        # latest() treats it as unreadable and falls back...
        assert store.latest("job").value == "v1"
        # ...but direct decoding surfaces the real reason.
        with pytest.raises(DurabilityError, match="version"):
            Checkpoint.from_json_dict(json.loads(path.read_text()))

    def test_keep_prunes_old_checkpoints(self, tmp_path):
        store = DirectoryStore(tmp_path, keep=2)
        for i in range(5):
            store.save(ckpt(value=i))
        history = store.history("job")
        assert [c.value for c in history] == [3, 4]
        assert store.latest("job").value == 4

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(DurabilityError):
            DirectoryStore(tmp_path, keep=0)

    def test_reopened_store_continues_sequence(self, tmp_path):
        DirectoryStore(tmp_path).save(ckpt(value=1))
        reopened = DirectoryStore(tmp_path)
        assert reopened.save(ckpt(value=2)).seq == 2
        assert [c.value for c in reopened.history("job")] == [1, 2]

    def test_unsafe_keys_cannot_collide(self, tmp_path):
        assert _key_dirname("a/b") != _key_dirname("a_b")
        assert _key_dirname("plain-key.1") == "plain-key.1"
        store = DirectoryStore(tmp_path)
        store.save(ckpt(key="a/b", value="slash"))
        store.save(ckpt(key="a_b", value="underscore"))
        assert store.latest("a/b").value == "slash"
        assert store.latest("a_b").value == "underscore"

    def test_empty_key_rejected(self, tmp_path):
        with pytest.raises(DurabilityError):
            DirectoryStore(tmp_path).save(ckpt(key=""))


class TestMalformedDocuments:
    def test_missing_value_rejected(self):
        with pytest.raises(DurabilityError):
            Checkpoint.from_json_dict({"version": 1, "key": "x"})

    def test_round_trip_preserves_version(self):
        doc = ckpt().to_json_dict()
        assert doc["version"] == CHECKPOINT_VERSION
        assert Checkpoint.from_json_dict(doc).value == 41
