"""Crash recovery: SIGKILL the master mid-run, resume from its checkpoints.

The hardest durability scenario ROADMAP's north star requires: not a
worker dying but the *whole master process*.  A subprocess runs a
checkpointed four-stage pipeline and is SIGKILLed while stage 3 is in
flight; a fresh service (this test process, standing in for the restarted
master) resumes from the surviving ``DirectoryStore`` and must produce
the same final result while re-executing only the un-checkpointed
stages — proven by a muscle-invocation log file that outlives the dead
process.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import Execute, Pipe, QoS, Seq, SkeletonService
from repro.durability import DirectoryStore
from repro.durability.store import KIND_FINAL

_HELPER = Path(__file__).with_name("_crash_master.py")
_SRC = Path(__file__).resolve().parents[2] / "src"


def parent_side_program(invocation_log):
    """Same program shape as the helper's (fingerprints must match),
    without the stage-3 stall, logging to the same invocation file."""

    def stage(i):
        def fn(v, i=i):
            with open(invocation_log, "a") as fh:
                fh.write(f"{i}\n")
            return v + i

        return Seq(Execute(fn, name=f"s{i}"))

    return Pipe(stage(1), stage(2), stage(3), stage(4))


def read_invocations(invocation_log):
    path = Path(invocation_log)
    if not path.exists():
        return []
    return [int(line) for line in path.read_text().split() if line]


@pytest.mark.durability
@pytest.mark.integration
class TestMasterCrashRecovery:
    def test_sigkilled_master_resumes_to_same_result(self, tmp_path):
        store_root = tmp_path / "ckpts"
        invocation_log = tmp_path / "invocations.log"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(_SRC) + os.pathsep + env.get("PYTHONPATH", "")
        master = subprocess.Popen(
            [sys.executable, str(_HELPER), str(store_root), str(invocation_log)],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        try:
            # Wait until the stage-2 boundary checkpoint is durably
            # committed (atomic commits make concurrent reads safe),
            # then SIGKILL the master while stage 3 sleeps.
            store = DirectoryStore(store_root)
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                latest = store.latest("job")
                if (
                    latest is not None
                    and latest.progress.get("completed_stages") == 2
                ):
                    break
                if master.poll() is not None:
                    out, err = master.communicate(timeout=10.0)
                    raise AssertionError(
                        f"master exited early: {err.decode(errors='replace')}"
                    )
                time.sleep(0.02)
            else:
                raise AssertionError("stage-2 checkpoint never appeared")
            os.kill(master.pid, signal.SIGKILL)
            master.wait(timeout=30.0)
        finally:
            if master.poll() is None:
                master.kill()
                master.wait(timeout=30.0)

        assert master.returncode == -signal.SIGKILL
        # The dead master completed exactly stages 1 and 2.
        assert read_invocations(invocation_log) == [1, 2]
        latest = store.latest("job")
        assert latest.progress == {"completed_stages": 2}
        assert latest.value == 0 + 1 + 2

        # The "restarted master": a fresh service over the same store.
        with SkeletonService(
            backend="threads", capacity=2, checkpoints=DirectoryStore(store_root)
        ) as service:
            resumed = service.resubmit_from_checkpoint(
                parent_side_program(invocation_log), "job"
            )
            assert resumed.result(timeout=60.0) == 0 + 1 + 2 + 3 + 4
            assert service.drain(timeout=30.0)

        # Across crash + resume, every stage executed exactly once.
        assert sorted(read_invocations(invocation_log)) == [1, 2, 3, 4]
        final = DirectoryStore(store_root).latest("job")
        assert final.kind == KIND_FINAL and final.value == 10
