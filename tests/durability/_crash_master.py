"""Subprocess body for the SIGKILL crash-recovery test.

Runs a thread-backend service executing a four-stage pipe under a
checkpoint key, with stage 3 blocked on a long sleep so the parent test
can SIGKILL this process while stages 1-2 are durably checkpointed and
stages 3-4 never completed.  Each completed stage appends its number to
an invocation log *file*, so execution counts survive the process
boundary.

Invoked as::

    python _crash_master.py <store_root> <invocation_log>
"""

import sys
import time


def stage(i, delay, invocation_log):
    from repro import Execute, Seq

    def fn(v, i=i, delay=delay):
        if delay:
            time.sleep(delay)
        # Log on *completion* only: a stage killed mid-body never counts.
        with open(invocation_log, "a") as fh:
            fh.write(f"{i}\n")
        return v + i

    return Seq(Execute(fn, name=f"s{i}"))


def main(store_root, invocation_log):
    from repro import Pipe, QoS, SkeletonService
    from repro.durability import DirectoryStore

    program = Pipe(
        stage(1, 0.0, invocation_log),
        stage(2, 0.0, invocation_log),
        stage(3, 120.0, invocation_log),  # parent SIGKILLs us in here
        stage(4, 0.0, invocation_log),
    )
    store = DirectoryStore(store_root)
    service = SkeletonService(backend="threads", capacity=2, checkpoints=store)
    handle = service.submit(
        program, 0, qos=QoS.wall_clock(600.0), checkpoint="job"
    )
    handle.result(timeout=300.0)


if __name__ == "__main__":
    main(sys.argv[1], sys.argv[2])
