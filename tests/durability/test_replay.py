"""Record/replay determinism: the replayed Rebalance log equals the live one.

The acceptance bar from the durability tentpole: replaying a recorded
run's event log through the simulator reproduces an **identical
normalized Rebalance log** — every grant, cold-start, infeasibility flag
and committed budget re-derived offline from the saved artifact.
"""

import pytest

from repro import (
    Execute,
    Map,
    Merge,
    QoS,
    Seq,
    SimulatedPlatform,
    SkeletonService,
    Split,
)
from repro.durability import (
    MemoryStore,
    ReplayLog,
    RunRecorder,
    normalize_rebalance,
    replay_rebalances,
)
from repro.errors import DurabilityError
from repro.runtime.costmodel import ConstantCostModel
from repro.service import TenantQuota


def timed_map_program(width):
    return Map(
        Split(lambda v, w=width: [v] * w, name="split"),
        Seq(Execute(lambda v: v, name="leaf")),
        Merge(sum, name="merge"),
    )


def sim_service(**kwargs):
    platform = SimulatedPlatform(
        parallelism=1, cost_model=ConstantCostModel(1.0), max_parallelism=4
    )
    return SkeletonService(platform=platform, **kwargs)


def run_and_record(service, widths, qos_list=None):
    """Submit one program per width, track each, drive to completion."""
    recorder = RunRecorder(service)
    programs, handles = {}, []
    for i, width in enumerate(widths):
        program = timed_map_program(width)
        qos = qos_list[i] if qos_list else QoS.wall_clock(100.0)
        handle = service.submit(program, i, qos=qos)
        recorder.track(handle, label=f"run-{i}")
        programs[handle.execution_id] = program
        handles.append(handle)
    results = [h.result() for h in handles]
    return recorder.finish(), programs, results


def fresh_programs(log, widths):
    """Fresh constructions keyed by recorded execution id (eid order ==
    submission order on the process-global id counter)."""
    return {
        eid: timed_map_program(width)
        for eid, width in zip(sorted(log.executions), widths)
    }


class TestReplayDeterminism:
    def test_replay_reproduces_identical_rebalance_log(self):
        widths = [3, 4, 2]
        log, programs, _results = run_and_record(sim_service(), widths)
        live = log.recorded_rebalances()
        assert live, "source run produced no rebalances"
        replayed = replay_rebalances(log, programs)
        assert len(replayed) == len(live)
        assert [normalize_rebalance(r) for r in replayed] == [
            normalize_rebalance(r) for r in live
        ]

    def test_replay_against_fresh_construction(self):
        widths = [3, 3]
        log, _programs, _results = run_and_record(sim_service(), widths)
        live = [normalize_rebalance(r) for r in log.recorded_rebalances()]
        replayed = replay_rebalances(log, fresh_programs(log, widths))
        assert [normalize_rebalance(r) for r in replayed] == live

    def test_replay_round_trips_through_disk(self, tmp_path):
        widths = [4, 2]
        log, _programs, _results = run_and_record(sim_service(), widths)
        path = tmp_path / "run.json"
        log.save(path)
        loaded = ReplayLog.load(path)
        replayed = replay_rebalances(loaded, fresh_programs(loaded, widths))
        assert [normalize_rebalance(r) for r in replayed] == [
            normalize_rebalance(r) for r in log.recorded_rebalances()
        ]

    def test_replay_with_mixed_qos_classes(self):
        qos_list = [
            QoS.wall_clock(100.0, weight=3.0),
            QoS.wall_clock(100.0, priority=1),
            QoS.wall_clock(100.0),
        ]
        log, programs, _results = run_and_record(
            sim_service(tenants={"default": TenantQuota(weight=1.0)}),
            [3, 3, 3],
            qos_list,
        )
        replayed = replay_rebalances(log, programs)
        assert [normalize_rebalance(r) for r in replayed] == [
            normalize_rebalance(r) for r in log.recorded_rebalances()
        ]
        # The recorded classes made it into the log (and thus the replay).
        weights = {m["weight"] for m in log.executions.values()}
        assert 3.0 in weights

    def test_fingerprint_mismatch_rejected(self):
        log, _programs, _results = run_and_record(sim_service(), [3])
        # A structurally different program (the map width only changes
        # the split lambda, not the shape — it fingerprints identically).
        wrong = {
            eid: Seq(Execute(lambda v: v, name="other"))
            for eid in log.executions
        }
        with pytest.raises(DurabilityError, match="fingerprint"):
            replay_rebalances(log, wrong)

    def test_missing_program_rejected(self):
        log, _programs, _results = run_and_record(sim_service(), [3])
        with pytest.raises(DurabilityError, match="program"):
            replay_rebalances(log, {})

    def test_future_log_version_rejected(self, tmp_path):
        log, _programs, _results = run_and_record(sim_service(), [2])
        path = tmp_path / "run.json"
        log.save(path)
        import json

        doc = json.loads(path.read_text())
        doc["version"] = 99
        path.write_text(json.dumps(doc))
        with pytest.raises(DurabilityError, match="version"):
            ReplayLog.load(path)

    def test_untracked_executions_dropped_not_fatal(self):
        service = sim_service()
        recorder = RunRecorder(service)
        tracked = service.submit(
            timed_map_program(3), 1, qos=QoS.wall_clock(100.0)
        )
        recorder.track(tracked)
        untracked = service.submit(
            timed_map_program(3), 2, qos=QoS.wall_clock(100.0)
        )
        assert tracked.result() == 3 and untracked.result() == 6
        log = recorder.finish()
        assert recorder.dropped_events > 0
        assert set(log.executions) == {tracked.execution_id}
        # Every kept event belongs to the tracked execution.
        assert all(
            e["execution_id"] == tracked.execution_id for e in log.events
        )

    def test_recorder_detaches_cleanly(self):
        service = sim_service()
        recorder = RunRecorder(service)
        generation = service.platform.bus.generation
        log = recorder.finish()
        assert service.platform.bus.generation > generation
        assert service.arbiter.on_rebalance is None
        assert log.points == [] and log.events == []


class TestReplayWithCheckpoints:
    def test_recorded_checkpointed_run_still_replays(self):
        """Checkpointing must not perturb the arbitration decisions."""
        store = MemoryStore()
        service = sim_service(checkpoints=store)
        recorder = RunRecorder(service)
        programs = {}
        handles = []
        for i in range(2):
            program = timed_map_program(3)
            handle = service.submit(
                program,
                i,
                qos=QoS.wall_clock(100.0),
                checkpoint=f"job-{i}",
            )
            recorder.track(handle)
            programs[handle.execution_id] = program
            handles.append(handle)
        assert [h.result() for h in handles] == [0, 3]
        log = recorder.finish()
        replayed = replay_rebalances(log, programs)
        assert [normalize_rebalance(r) for r in replayed] == [
            normalize_rebalance(r) for r in log.recorded_rebalances()
        ]
        assert store.latest("job-0").kind == "final"
