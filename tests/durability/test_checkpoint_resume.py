"""Checkpoint-on-boundary and resume-from-checkpoint semantics.

The acceptance bar: an interrupted execution resumed with
``resubmit_from_checkpoint()`` completes with the same final result as an
uninterrupted run, re-executing only the activities *after* its last
committed checkpoint — asserted here via muscle-invocation counts on the
deterministic simulator and on a real thread pool.
"""

import threading
import time

import pytest

from repro import (
    Execute,
    For,
    Pipe,
    QoS,
    Seq,
    SimulatedPlatform,
    SkeletonService,
    While,
)
from repro.durability import (
    MemoryStore,
    program_fingerprint,
    qos_from_dict,
    qos_to_dict,
    remainder_program,
    remaining_qos,
)
from repro.durability.store import KIND_BOUNDARY, KIND_FINAL, KIND_INITIAL
from repro.errors import DurabilityError, ServiceError
from repro.runtime.costmodel import ConstantCostModel
from repro.service import ExecutionStatus


def counting_pipe(calls, n=4):
    """An n-stage pipe; stage i appends i to *calls* and adds i."""

    def stage(i):
        def fn(v, i=i):
            calls.append(i)
            return v + i

        return Seq(Execute(fn, name=f"s{i}"))

    return Pipe(*(stage(i) for i in range(1, n + 1)))


def sim_service(store=None, **kwargs):
    platform = SimulatedPlatform(
        parallelism=1, cost_model=ConstantCostModel(1.0), max_parallelism=4
    )
    return SkeletonService(platform=platform, checkpoints=store, **kwargs)


def crash_copy(store, src_key, dst_key, predicate):
    """Stash the first checkpoint of *src_key* matching *predicate* under
    *dst_key*, simulating a crash right after that commit."""
    for ckpt in store.history(src_key):
        if predicate(ckpt):
            clone = type(ckpt)(**{**ckpt.__dict__, "key": dst_key, "seq": 0})
            store.save(clone)
            return ckpt
    raise AssertionError("no checkpoint matched the crash predicate")


# ---------------------------------------------------------------------------
# structural helpers


class TestFingerprint:
    def test_same_shape_same_fingerprint(self):
        a = counting_pipe([], 4)
        b = counting_pipe([], 4)
        assert program_fingerprint(a) == program_fingerprint(b)

    def test_shape_changes_fingerprint(self):
        assert program_fingerprint(counting_pipe([], 4)) != program_fingerprint(
            counting_pipe([], 3)
        )

    def test_for_trip_count_is_structural(self):
        body = Seq(Execute(lambda v: v + 1, name="inc"))
        assert program_fingerprint(For(3, body)) != program_fingerprint(
            For(4, body)
        )


class TestRemainderProgram:
    def test_empty_progress_is_identity(self):
        program = counting_pipe([], 4)
        assert remainder_program(program, {}) is program

    def test_pipe_remainder_shares_stages(self):
        program = counting_pipe([], 4)
        remainder = remainder_program(program, {"completed_stages": 2})
        assert isinstance(remainder, Pipe)
        assert remainder.stages == program.stages[2:]

    def test_single_remaining_stage_unwrapped(self):
        program = counting_pipe([], 4)
        remainder = remainder_program(program, {"completed_stages": 3})
        assert remainder is program.stages[3]

    def test_all_stages_done_passes_value_through(self):
        program = counting_pipe([], 4)
        remainder = remainder_program(program, {"completed_stages": 4})
        assert isinstance(remainder, For) and remainder.times == 0

    def test_for_remainder(self):
        program = For(5, Seq(Execute(lambda v: v + 1, name="inc")))
        remainder = remainder_program(program, {"completed_iterations": 2})
        assert isinstance(remainder, For) and remainder.times == 3
        assert remainder.subskel is program.subskel

    def test_progress_kind_mismatch_rejected(self):
        with pytest.raises(DurabilityError, match="not a pipe"):
            remainder_program(
                For(2, Seq(lambda v: v)), {"completed_stages": 1}
            )
        with pytest.raises(DurabilityError, match="not a for"):
            remainder_program(counting_pipe([], 2), {"completed_iterations": 1})

    def test_progress_overflow_rejected(self):
        with pytest.raises(DurabilityError):
            remainder_program(counting_pipe([], 2), {"completed_stages": 3})


class TestQosRoundTrip:
    def test_round_trip(self):
        qos = QoS.wall_clock(10.0, margin=0.2, max_lp=3, weight=2.0, priority=1)
        assert qos_from_dict(qos_to_dict(qos)) == qos

    def test_none_passes_through(self):
        assert qos_to_dict(None) is None
        assert qos_from_dict(None) is None

    def test_remaining_qos_shrinks_deadline(self):
        qos = QoS.wall_clock(10.0, weight=2.0, priority=1)
        left = remaining_qos(qos, 4.0)
        assert left.wct.seconds == pytest.approx(6.0)
        assert left.weight == 2.0 and int(left.priority) == 1

    def test_blown_deadline_keeps_positive_horizon(self):
        left = remaining_qos(QoS.wall_clock(10.0), 50.0)
        assert 0 < left.wct.seconds < 0.01


# ---------------------------------------------------------------------------
# boundary policy on the simulator


class TestCheckpointerBoundaries:
    def test_pipe_writes_initial_boundaries_final(self):
        store = MemoryStore()
        service = sim_service(store)
        handle = service.submit(
            counting_pipe([], 4), 0, qos=QoS.wall_clock(100.0), checkpoint="p"
        )
        assert handle.result() == 10
        history = store.history("p")
        assert [c.kind for c in history] == (
            [KIND_INITIAL] + [KIND_BOUNDARY] * 4 + [KIND_FINAL]
        )
        assert [c.progress.get("completed_stages", 0) for c in history[1:5]] == [
            1,
            2,
            3,
            4,
        ]
        # Each boundary persists the value entering the next stage.
        assert [c.value for c in history] == [0, 1, 3, 6, 10, 10]
        assert history[-1].value == 10

    def test_for_records_iterations(self):
        store = MemoryStore()
        service = sim_service(store)
        program = For(3, Seq(Execute(lambda v: v + 1, name="inc")))
        handle = service.submit(
            program, 0, qos=QoS.wall_clock(100.0), checkpoint="f"
        )
        assert handle.result() == 3
        boundaries = [
            c for c in store.history("f") if c.kind == KIND_BOUNDARY
        ]
        assert [c.progress["completed_iterations"] for c in boundaries] == [1, 2, 3]

    def test_while_advances_value_not_progress(self):
        store = MemoryStore()
        service = sim_service(store)
        program = While(
            lambda v: v < 3, Seq(Execute(lambda v: v + 1, name="inc"))
        )
        handle = service.submit(
            program, 0, qos=QoS.wall_clock(100.0), checkpoint="w"
        )
        assert handle.result() == 3
        boundaries = [
            c for c in store.history("w") if c.kind == KIND_BOUNDARY
        ]
        assert boundaries, "while boundaries missing"
        assert all(c.progress == {} for c in boundaries)
        assert [c.value for c in boundaries] == [0, 1, 2]

    def test_elapsed_accumulates(self):
        store = MemoryStore()
        service = sim_service(store)
        handle = service.submit(
            counting_pipe([], 3), 0, qos=QoS.wall_clock(100.0), checkpoint="e"
        )
        handle.result()
        elapsed = [c.elapsed for c in store.history("e")]
        assert elapsed == sorted(elapsed)
        assert elapsed[-1] > 0

    def test_failing_store_never_kills_the_execution(self):
        class ExplodingStore(MemoryStore):
            def save(self, checkpoint):
                raise OSError("disk on fire")

        store = ExplodingStore()
        service = sim_service(store)
        handle = service.submit(
            counting_pipe([], 3), 0, qos=QoS.wall_clock(100.0), checkpoint="x"
        )
        assert handle.result() == 6  # unharmed
        assert store.latest("x") is None  # nothing committed, nothing raised

    def test_checkpointer_counts_swallowed_store_errors(self):
        from repro.core.estimator import EstimatorRegistry
        from repro.durability import Checkpointer

        class ExplodingStore(MemoryStore):
            def save(self, checkpoint):
                raise OSError("disk on fire")

        ckptr = Checkpointer(
            store=ExplodingStore(),
            key="x",
            execution_id=1,
            program=counting_pipe([], 2),
            estimators=EstimatorRegistry(),
        )
        ckptr.start(0.0, value=0)
        assert ckptr.errors == 1 and ckptr.written == 0


# ---------------------------------------------------------------------------
# resume on the simulator (muscle-invocation counts)


class TestResumeSimulator:
    def test_resume_runs_only_the_remainder(self):
        store = MemoryStore()
        calls = []
        service = sim_service(store)
        handle = service.submit(
            counting_pipe(calls, 4), 0, qos=QoS.wall_clock(100.0), checkpoint="a"
        )
        uninterrupted = handle.result()
        assert uninterrupted == 10 and calls == [1, 2, 3, 4]

        crash_copy(
            store, "a", "crashed",
            lambda c: c.progress.get("completed_stages") == 2,
        )
        calls.clear()
        resumed = sim_service(store).resubmit_from_checkpoint(
            counting_pipe(calls, 4), "crashed"
        )
        assert resumed.result() == uninterrupted
        assert calls == [3, 4], "checkpointed stages must not re-execute"

    def test_resumed_final_checkpoint_chains_progress(self):
        store = MemoryStore()
        service = sim_service(store)
        handle = service.submit(
            counting_pipe([], 4), 0, qos=QoS.wall_clock(100.0), checkpoint="a"
        )
        handle.result()
        crash_copy(
            store, "a", "crashed",
            lambda c: c.progress.get("completed_stages") == 2,
        )
        resumed = sim_service(store).resubmit_from_checkpoint(
            counting_pipe([], 4), "crashed"
        )
        assert resumed.result() == 10
        history = store.history("crashed")
        # The resumed run chains: its boundaries add onto the base (the
        # first history entry is the crash checkpoint itself).
        assert [
            c.progress.get("completed_stages")
            for c in history
            if c.kind == KIND_BOUNDARY
        ] == [2, 3, 4]
        assert history[-1].kind == KIND_FINAL and history[-1].value == 10

    def test_resume_from_final_returns_result_without_rerun(self):
        store = MemoryStore()
        calls = []
        service = sim_service(store)
        service.submit(
            counting_pipe(calls, 3), 5, qos=QoS.wall_clock(100.0), checkpoint="d"
        ).result()
        ran = list(calls)
        resumed = sim_service(store).resubmit_from_checkpoint(
            counting_pipe(calls, 3), "d"
        )
        assert resumed.result(timeout=1.0) == 5 + 1 + 2 + 3
        assert resumed.status() is ExecutionStatus.COMPLETED
        assert calls == ran, "resume from a final checkpoint must not re-run"

    def test_resume_warm_starts_estimators(self):
        # A for-loop's remainder shares the body muscles with the full
        # program, so estimates observed before the crash warm the whole
        # remainder (the paper's scenario-2 initialization, from a
        # checkpoint instead of a file).
        store = MemoryStore()
        service = sim_service(store)

        def make():
            return For(4, Seq(Execute(lambda v: v + 1, name="inc")))

        service.submit(
            make(), 0, qos=QoS.wall_clock(100.0), checkpoint="warm"
        ).result()
        crash_copy(
            store, "warm", "crashed",
            lambda c: c.progress.get("completed_iterations") == 2,
        )
        fresh = make()
        resumed = sim_service(store).resubmit_from_checkpoint(fresh, "crashed")
        # The remainder's estimators are warm before any remainder event.
        assert resumed.analyzer.estimators.ready_for(
            remainder_program(fresh, {"completed_iterations": 2})
        )
        assert resumed.result() == 4

    def test_resume_shrinks_the_deadline(self):
        store = MemoryStore()
        service = sim_service(store)
        service.submit(
            counting_pipe([], 4), 0, qos=QoS.wall_clock(50.0), checkpoint="q"
        ).result()
        crash = crash_copy(
            store, "q", "crashed",
            lambda c: c.progress.get("completed_stages") == 2,
        )
        assert crash.elapsed > 0
        resumed = sim_service(store).resubmit_from_checkpoint(
            counting_pipe([], 4), "crashed"
        )
        assert resumed.qos.wct.seconds == pytest.approx(50.0 - crash.elapsed)
        assert resumed.result() == 10

    def test_fingerprint_mismatch_rejected(self):
        store = MemoryStore()
        service = sim_service(store)
        service.submit(
            counting_pipe([], 4), 0, qos=QoS.wall_clock(100.0), checkpoint="fp"
        ).result()
        with pytest.raises(DurabilityError, match="program shape"):
            service.resubmit_from_checkpoint(counting_pipe([], 3), "fp")

    def test_missing_key_rejected(self):
        service = sim_service(MemoryStore())
        with pytest.raises(DurabilityError, match="no checkpoint"):
            service.resubmit_from_checkpoint(counting_pipe([], 2), "nope")

    def test_checkpoint_requires_store(self):
        service = sim_service(store=None)
        with pytest.raises(ServiceError, match="checkpoint store"):
            service.submit(counting_pipe([], 2), 0, checkpoint="k")
        with pytest.raises(ServiceError, match="checkpoint store"):
            service.resubmit_from_checkpoint(counting_pipe([], 2), "k")

    def test_checkpoint_counter_exported(self):
        from repro.obs import Observability

        store = MemoryStore()
        obs = Observability(sample_rate=0.0)
        platform = SimulatedPlatform(
            parallelism=1, cost_model=ConstantCostModel(1.0), max_parallelism=4
        )
        service = SkeletonService(
            platform=platform, checkpoints=store, observability=obs
        )
        service.submit(
            counting_pipe([], 3), 0, qos=QoS.wall_clock(100.0), checkpoint="m"
        ).result()
        counter = obs.metrics.counter("repro_checkpoints_total")
        assert counter.value(kind="initial") == 1
        assert counter.value(kind="boundary") == 3
        assert counter.value(kind="final") == 1


# ---------------------------------------------------------------------------
# resume on a real thread pool (cancel-as-preemption)


class TestResumeThreads:
    def test_preempted_execution_resumes_to_same_result(self):
        store = MemoryStore()
        calls = []
        gate = threading.Event()
        boundary_seen = threading.Event()

        def stage(i, block=False):
            def fn(v, i=i, block=block):
                if block and not gate.is_set():
                    boundary_seen.set()
                    gate.wait(timeout=10.0)
                calls.append(i)
                return v + i

            return Seq(Execute(fn, name=f"s{i}"))

        def program():
            return Pipe(stage(1), stage(2), stage(3, block=True), stage(4))

        with SkeletonService(
            backend="threads", capacity=2, checkpoints=store
        ) as service:
            handle = service.submit(
                program(), 0, qos=QoS.wall_clock(100.0), checkpoint="job"
            )
            # Stage 3 is blocked on the gate: stages 1+2 committed their
            # boundary checkpoints, the rest never ran.
            assert boundary_seen.wait(timeout=10.0)
            assert handle.cancel() is True
            gate.set()  # release the blocked muscle so the pool drains
            assert service.drain(timeout=10.0)

        latest = store.latest("job")
        assert latest.kind == KIND_BOUNDARY
        assert latest.progress == {"completed_stages": 2}
        # The in-flight stage-3 muscle runs to completion after the gate
        # opens (cancel drops pending tasks, not running ones), but its
        # boundary never commits — the checkpointer detached at cancel —
        # and stage 4 is never scheduled.
        assert calls == [1, 2, 3]
        assert 4 not in calls

        calls.clear()
        with SkeletonService(
            backend="threads", capacity=2, checkpoints=store
        ) as resumed_service:
            resumed = resumed_service.resubmit_from_checkpoint(program(), "job")
            assert resumed.result(timeout=10.0) == 1 + 2 + 3 + 4
            assert resumed_service.drain(timeout=10.0)
        assert calls == [3, 4], "pinned stages must not re-execute"
        assert store.latest("job").kind == KIND_FINAL

    def test_uninterrupted_and_resumed_results_match(self):
        store = MemoryStore()
        calls = []
        with SkeletonService(
            backend="threads", capacity=2, checkpoints=store
        ) as service:
            baseline = service.submit(
                counting_pipe(calls, 4),
                7,
                qos=QoS.wall_clock(100.0),
                checkpoint="base",
            ).result(timeout=10.0)
        crash_copy(
            store, "base", "crashed",
            lambda c: c.progress.get("completed_stages") == 3,
        )
        calls.clear()
        with SkeletonService(
            backend="threads", capacity=2, checkpoints=store
        ) as service:
            resumed = service.resubmit_from_checkpoint(
                counting_pipe(calls, 4), "crashed"
            )
            assert resumed.result(timeout=10.0) == baseline
        assert calls == [4]
