"""Batched publication and the cached listener snapshot.

Covers the delta-pipeline event spine: ``EventBus.publish_batch`` /
``Listener.on_batch`` semantics, the ``EventBatch`` / ``EventDelta``
carriers, the snapshot-generation counter that keeps per-event publishes
lock-free, and the regression contract that listener-set mutation during
a publish behaves exactly as the old copy-under-lock implementation did.
"""

import logging

import pytest

from repro import SimulatedPlatform, run
from repro.events.batch import EventBatch, EventDelta
from repro.events.bus import EventBus, Listener
from repro.events.types import Event, When, Where
from repro.skeletons import Execute, Farm, Map, Merge, Seq, Split


def make_event(value=0, kind="seq", when=When.BEFORE, where=Where.SKELETON,
               index=0, execution_id=None, timestamp=0.0):
    return Event(
        skeleton=None, kind=kind, when=when, where=where,
        index=index, parent_index=None, value=value, timestamp=timestamp,
        execution_id=execution_id,
    )


class Recorder(Listener):
    def __init__(self):
        self.seen = []

    def on_event(self, event):
        self.seen.append((event.label, event.value))
        return event.value


class BatchAware(Listener):
    def __init__(self):
        self.batches = []
        self.single = 0

    def on_event(self, event):
        self.single += 1
        return event.value

    def on_batch(self, events):
        self.batches.append(list(events))
        for event in events:
            event.value = self.on_event(event)


# ---------------------------------------------------------------------------
# snapshot caching + generation (satellite: no per-event lock/copy)


class TestSnapshotGeneration:
    def test_generation_bumps_on_every_mutation(self):
        bus = EventBus()
        g0 = bus.generation
        listener = Recorder()
        bus.add_listener(listener)
        assert bus.generation == g0 + 1
        bus.move_to_end(listener)
        assert bus.generation == g0 + 2
        assert bus.remove_listener(listener)
        assert bus.generation == g0 + 3
        bus.add_listener(listener)
        bus.clear()
        assert bus.generation == g0 + 5

    def test_publishing_does_not_bump_generation(self):
        bus = EventBus()
        bus.add_listener(Recorder())
        g = bus.generation
        for _ in range(10):
            bus.publish(make_event())
        bus.publish_batch([make_event(), make_event()])
        assert bus.generation == g

    def test_failed_remove_does_not_bump_generation(self):
        bus = EventBus()
        g = bus.generation
        assert not bus.remove_listener(Recorder())
        assert bus.generation == g

    def test_listener_removing_itself_mid_publish_still_gets_event(self):
        """Regression: mutation mid-publish behaves as the old
        copy-under-lock snapshot did — the in-flight publish delivers to
        the snapshot taken at entry; the mutation shows from the next
        publish on."""
        bus = EventBus()
        tail = Recorder()

        class RemovesBoth(Listener):
            def __init__(self):
                self.calls = 0

            def on_event(self, event):
                self.calls += 1
                bus.remove_listener(self)
                bus.remove_listener(tail)
                return event.value

        remover = RemovesBoth()
        bus.add_listener(remover)
        bus.add_listener(tail)
        bus.publish(make_event(value=1))
        # Both were in the entry snapshot: both saw the current event.
        assert remover.calls == 1
        assert len(tail.seen) == 1
        bus.publish(make_event(value=2))
        # The mutation took effect for the next publish.
        assert remover.calls == 1
        assert len(tail.seen) == 1

    def test_listener_added_mid_publish_sees_next_event_only(self):
        bus = EventBus()
        late = Recorder()

        class AddsLate(Listener):
            def on_event(self, event):
                if not late.seen and late not in bus.listeners():
                    bus.add_listener(late)
                return event.value

        bus.add_listener(AddsLate())
        bus.publish(make_event(value=1))
        assert late.seen == []
        bus.publish(make_event(value=2))
        assert [v for _l, v in late.seen] == [2]


# ---------------------------------------------------------------------------
# publish_batch semantics


class TestPublishBatch:
    def test_value_pipeline_runs_per_event_in_listener_order(self):
        bus = EventBus()
        bus.add_callback(lambda e: e.value + 1)
        bus.add_callback(lambda e: e.value * 10)
        values = bus.publish_batch([make_event(value=1), make_event(value=2)])
        assert values == [(1 + 1) * 10, (2 + 1) * 10]

    def test_batch_aware_listener_consumes_batch_in_one_call(self):
        bus = EventBus()
        aware = BatchAware()
        bus.add_listener(aware)
        bus.publish_batch([make_event(), make_event(), make_event()])
        assert len(aware.batches) == 1
        assert len(aware.batches[0]) == 3
        assert aware.single == 3  # default fallback inside on_batch

    def test_batch_filtered_by_accepts(self):
        bus = EventBus()

        class OnlyAfter(BatchAware):
            def accepts(self, event):
                return event.when is When.AFTER

        aware = OnlyAfter()
        bus.add_listener(aware)
        bus.publish_batch(
            [make_event(when=When.BEFORE), make_event(when=When.AFTER)]
        )
        assert len(aware.batches) == 1
        assert [e.when for e in aware.batches[0]] == [When.AFTER]

    def test_counters_and_singleton_fallback(self):
        bus = EventBus()
        bus.add_listener(Recorder())
        assert bus.publish_batch([]) == []
        bus.publish_batch([make_event(value=7)])  # delegates to publish
        assert bus.published == 1
        assert bus.batches == 0
        bus.publish_batch([make_event(), make_event()])
        assert bus.published == 3
        assert bus.batches == 1
        assert bus.batched_events == 2

    def test_batch_error_propagates_by_default(self):
        bus = EventBus()
        bus.add_callback(lambda e: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            bus.publish_batch([make_event(), make_event()])

    def test_batch_error_swallowed_when_not_propagating(self, caplog):
        bus = EventBus(propagate_errors=False)
        bus.add_callback(lambda e: 1 / 0)
        tail = Recorder()
        bus.add_listener(tail)
        with caplog.at_level(logging.ERROR):
            values = bus.publish_batch([make_event(value=3), make_event(value=4)])
        assert values == [3, 4]  # values untouched by the failing listener
        assert len(tail.seen) == 2  # later listeners still ran

    def test_default_listener_failure_is_isolated_per_event(self, caplog):
        """Regression: a non-batch-aware listener that raises on one
        event of a batch still receives the remaining events — exactly
        the N-separate-publishes semantics."""
        bus = EventBus(propagate_errors=False)

        class FlakyRecorder(Recorder):
            def on_event(self, event):
                if event.value == 2:
                    raise RuntimeError("boom")
                return super().on_event(event)

        flaky = FlakyRecorder()
        bus.add_listener(flaky)
        with caplog.at_level(logging.ERROR):
            values = bus.publish_batch(
                [make_event(value=v) for v in (1, 2, 3)]
            )
        assert values == [1, 2, 3]
        assert [v for _l, v in flaky.seen] == [1, 3]  # 3 still delivered


# ---------------------------------------------------------------------------
# EventBatch / EventDelta


class TestEventBatch:
    def test_sequence_protocol_and_values(self):
        events = [make_event(value=v) for v in (1, 2, 3)]
        batch = EventBatch(events)
        assert len(batch) == 3
        assert batch[1] is events[1]
        assert list(batch) == events
        assert batch.values == [1, 2, 3]

    def test_by_execution_preserves_order(self):
        events = [
            make_event(execution_id=1, index=0),
            make_event(execution_id=2, index=5),
            make_event(execution_id=1, index=3),
        ]
        grouped = EventBatch(events).by_execution()
        assert set(grouped) == {1, 2}
        assert [e.index for e in grouped[1]] == [0, 3]
        assert [e.index for e in grouped[2]] == [5]

    def test_delta_summarizes_one_execution(self):
        events = [
            make_event(execution_id=9, index=1, when=When.BEFORE, timestamp=1.0),
            make_event(
                execution_id=9, index=2, when=When.AFTER,
                where=Where.SKELETON, timestamp=2.5,
            ),
            make_event(
                execution_id=9, index=1, when=When.AFTER,
                where=Where.NESTED, timestamp=3.0,
            ),
        ]
        delta = EventBatch(events).delta()
        assert isinstance(delta, EventDelta)
        assert delta.execution_id == 9
        assert delta.events == 3
        assert delta.analysis_points == 1  # AFTER NESTED is not one
        assert delta.indices == (1, 2)
        assert (delta.first_timestamp, delta.last_timestamp) == (1.0, 3.0)

    def test_delta_rejects_mixed_executions(self):
        batch = EventBatch(
            [make_event(execution_id=1), make_event(execution_id=2)]
        )
        assert EventBatch([]).delta() is None
        with pytest.raises(ValueError, match="spans executions"):
            batch.delta()
        deltas = batch.deltas()
        assert set(deltas) == {1, 2}
        assert all(d.events == 1 for d in deltas.values())


# ---------------------------------------------------------------------------
# the runtime actually emits batches


def fanout_program(width, subskel):
    return Map(
        Split(lambda v, w=width: [v] * w, name="split"),
        subskel,
        Merge(lambda rs: rs[0], name="merge"),
    )


class TestRuntimeBatchEmission:
    def test_map_fanout_markers_publish_as_one_batch(self):
        platform = SimulatedPlatform(parallelism=2)
        run(fanout_program(4, Seq(Execute(lambda v: v, name="work"))), 1, platform)
        assert platform.bus.batches >= 1
        assert platform.bus.batched_events >= 4

    def test_inline_emitting_children_stay_per_event(self):
        # A Farm child emits farm@b inline during _start: batching the
        # markers would reorder the stream, so the runtime does not.
        platform = SimulatedPlatform(parallelism=2)
        run(
            fanout_program(4, Farm(Seq(Execute(lambda v: v, name="work")))),
            1,
            platform,
        )
        assert platform.bus.batches == 0

    def test_batched_and_single_width_runs_agree(self):
        wide = SimulatedPlatform(parallelism=2)
        result = run(
            fanout_program(3, Seq(Execute(lambda v: v + 1, name="work"))),
            1,
            wide,
        )
        assert result == 2
        narrow = SimulatedPlatform(parallelism=2)
        assert (
            run(
                fanout_program(1, Seq(Execute(lambda v: v + 1, name="work"))),
                1,
                narrow,
            )
            == 2
        )
        assert narrow.bus.batches == 0  # single child: plain publish
