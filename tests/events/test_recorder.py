"""Unit tests for the event recorder."""

from repro.events import EventBus, EventRecorder, When, Where
from repro.events.types import Event


def ev(when=When.BEFORE, kind="seq", where=Where.SKELETON, index=0, ts=0.0):
    return Event(
        skeleton=None, kind=kind, when=when, where=where,
        index=index, parent_index=None, value=None, timestamp=ts,
    )


def test_records_in_order():
    rec = EventRecorder()
    bus = EventBus()
    bus.add_listener(rec)
    bus.publish(ev(kind="map"))
    bus.publish(ev(kind="seq"))
    assert rec.labels() == ["map@b", "seq@b"]
    assert len(rec) == 2


def test_select_filters():
    rec = EventRecorder()
    rec.on_event(ev(kind="map", where=Where.SPLIT))
    rec.on_event(ev(kind="map", where=Where.MERGE))
    rec.on_event(ev(kind="seq"))
    assert len(rec.select(kind="map")) == 2
    assert len(rec.select(where=Where.MERGE)) == 1
    assert len(rec.select(predicate=lambda e: e.kind == "seq")) == 1


def test_first():
    rec = EventRecorder()
    assert rec.first(kind="map") is None
    rec.on_event(ev(kind="map", ts=3.0))
    assert rec.first(kind="map").timestamp == 3.0


def test_pairs_and_durations():
    rec = EventRecorder()
    rec.on_event(ev(When.BEFORE, index=1, ts=1.0))
    rec.on_event(ev(When.AFTER, index=1, ts=4.5))
    assert rec.is_balanced()
    assert rec.durations() == [3.5]


def test_clear():
    rec = EventRecorder()
    rec.on_event(ev())
    rec.clear()
    assert len(rec) == 0


def test_timestamps_monotonic():
    rec = EventRecorder()
    rec.on_event(ev(ts=1.0))
    rec.on_event(ev(ts=2.0))
    assert rec.timestamps_monotonic()
    rec.on_event(ev(ts=0.5))
    assert not rec.timestamps_monotonic()
