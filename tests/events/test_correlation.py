"""Unit + property tests for index allocation and before/after pairing."""

import threading

from hypothesis import given, strategies as st

from repro.events.correlation import IndexAllocator, check_balanced, pair_events
from repro.events.types import Event, When, Where


def ev(when, index=0, where=Where.SKELETON, ts=0.0, **extra):
    return Event(
        skeleton=None, kind="seq", when=when, where=where,
        index=index, parent_index=None, value=None, timestamp=ts, extra=extra,
    )


class TestIndexAllocator:
    def test_monotonic(self):
        alloc = IndexAllocator()
        assert [alloc.next() for _ in range(4)] == [0, 1, 2, 3]

    def test_start_offset(self):
        assert IndexAllocator(start=10).next() == 10

    def test_thread_safe_uniqueness(self):
        alloc = IndexAllocator()
        out = []
        lock = threading.Lock()

        def worker():
            local = [alloc.next() for _ in range(200)]
            with lock:
                out.extend(local)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(out) == len(set(out)) == 1600


class TestPairing:
    def test_simple_pair(self):
        events = [ev(When.BEFORE, ts=1.0), ev(When.AFTER, ts=2.0)]
        pairs = pair_events(events)
        assert len(pairs) == 1
        assert pairs[0][0].when is When.BEFORE

    def test_pairs_respect_index(self):
        events = [
            ev(When.BEFORE, index=1, ts=0),
            ev(When.BEFORE, index=2, ts=1),
            ev(When.AFTER, index=2, ts=2),
            ev(When.AFTER, index=1, ts=3),
        ]
        pairs = pair_events(events)
        assert {(b.index, a.index) for b, a in pairs} == {(1, 1), (2, 2)}

    def test_unmatched_after_raises(self):
        try:
            pair_events([ev(When.AFTER)])
        except ValueError:
            pass
        else:
            raise AssertionError("expected ValueError")

    def test_unmatched_before_detected(self):
        assert not check_balanced([ev(When.BEFORE)])

    def test_discriminates_by_iteration(self):
        events = [
            ev(When.BEFORE, where=Where.CONDITION, iteration=0, ts=0),
            ev(When.AFTER, where=Where.CONDITION, iteration=0, ts=1),
            ev(When.BEFORE, where=Where.CONDITION, iteration=1, ts=2),
            ev(When.AFTER, where=Where.CONDITION, iteration=1, ts=3),
        ]
        assert check_balanced(events)
        assert len(pair_events(events)) == 2

    @given(st.lists(st.integers(0, 5), max_size=20))
    def test_property_balanced_nesting(self, indices):
        """Any set of (before, after) pairs, arbitrarily interleaved by
        index, is balanced."""
        events = []
        ts = 0.0
        for i in indices:
            events.append(ev(When.BEFORE, index=i, ts=ts))
            ts += 1
        for i in reversed(indices):
            events.append(ev(When.AFTER, index=i, ts=ts))
            ts += 1
        assert check_balanced(events)
        assert len(pair_events(events)) == len(indices)
