"""Unit tests for the event bus: dispatch order, filtering, errors."""

import logging

import pytest

from repro.events.bus import EventBus, Listener
from repro.events.types import Event, When, Where


def make_event(value=0, kind="seq", when=When.BEFORE, where=Where.SKELETON):
    return Event(
        skeleton=None, kind=kind, when=when, where=where,
        index=0, parent_index=None, value=value, timestamp=0.0,
    )


class Recorder(Listener):
    def __init__(self):
        self.seen = []

    def on_event(self, event):
        self.seen.append(event.label)
        return event.value


class TestRegistration:
    def test_add_and_remove(self):
        bus = EventBus()
        listener = Recorder()
        bus.add_listener(listener)
        assert bus.listeners() == [listener]
        assert bus.remove_listener(listener)
        assert bus.listeners() == []

    def test_remove_missing_returns_false(self):
        assert not EventBus().remove_listener(Recorder())

    def test_add_requires_listener(self):
        with pytest.raises(TypeError):
            EventBus().add_listener(lambda e: e)

    def test_add_callback_filters(self):
        bus = EventBus()
        seen = []
        bus.add_callback(lambda e: seen.append(e.label) or e.value, kind="map")
        bus.publish(make_event(kind="seq"))
        bus.publish(make_event(kind="map"))
        assert seen == ["map@b"]

    def test_clear(self):
        bus = EventBus()
        bus.add_listener(Recorder())
        bus.clear()
        assert bus.listeners() == []


class TestDispatch:
    def test_publish_returns_value(self):
        bus = EventBus()
        assert bus.publish(make_event(value=7)) == 7

    def test_listeners_called_in_order(self):
        bus = EventBus()
        order = []
        bus.add_callback(lambda e: order.append("a") or e.value)
        bus.add_callback(lambda e: order.append("b") or e.value)
        bus.publish(make_event())
        assert order == ["a", "b"]

    def test_value_pipeline(self):
        bus = EventBus()
        bus.add_callback(lambda e: e.value + 1)
        bus.add_callback(lambda e: e.value * 10)
        assert bus.publish(make_event(value=1)) == 20

    def test_published_counter(self):
        bus = EventBus()
        bus.publish(make_event())
        bus.publish(make_event())
        assert bus.published == 2

    def test_accepts_skips_listener(self):
        bus = EventBus()

        class Picky(Recorder):
            def accepts(self, event):
                return event.kind == "map"

        picky = Picky()
        bus.add_listener(picky)
        bus.publish(make_event(kind="seq"))
        assert picky.seen == []


class TestMoveToEnd:
    def test_moves_existing_listener_last(self):
        bus = EventBus()
        a, b = Recorder(), Recorder()
        bus.add_listener(a)
        bus.add_listener(b)
        bus.move_to_end(a)
        assert bus.listeners() == [b, a]

    def test_registers_when_absent(self):
        bus = EventBus()
        a = Recorder()
        bus.move_to_end(a)
        assert bus.listeners() == [a]

    def test_dispatch_order_follows_move(self):
        bus = EventBus()
        order = []
        first = bus.add_callback(lambda e: (order.append("first"), e.value)[1])
        bus.add_callback(lambda e: (order.append("second"), e.value)[1])
        bus.move_to_end(first)
        bus.publish(make_event())
        assert order == ["second", "first"]


class TestErrors:
    def test_propagate_by_default(self):
        bus = EventBus()
        bus.add_callback(lambda e: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            bus.publish(make_event())

    def test_swallow_when_configured(self, caplog):
        bus = EventBus(propagate_errors=False)
        bus.add_callback(lambda e: 1 / 0)
        bus.add_callback(lambda e: e.value + 1)
        with caplog.at_level(logging.ERROR):
            result = bus.publish(make_event(value=1))
        assert result == 2  # second listener still ran on the original value
        assert any("failed" in r.message for r in caplog.records)
