"""Execution-scoped event filtering (repro.events.scoping)."""

import pytest

from repro import Execute, Map, Merge, Seq, SimulatedPlatform, Split
from repro.events import (
    Event,
    EventRecorder,
    ExecutionScopedListener,
    Listener,
    When,
    Where,
    check_balanced,
    scoped,
    split_by_execution,
)
from repro.runtime.interpreter import submit
from repro.runtime.task import Execution


def make_event(execution_id=None, when=When.BEFORE, index=0):
    return Event(
        skeleton=None,
        kind="seq",
        when=when,
        where=Where.SKELETON,
        index=index,
        parent_index=None,
        value=1,
        timestamp=0.0,
        execution_id=execution_id,
    )


class TestScopedListener:
    def test_filters_by_execution_id(self):
        inner = EventRecorder()
        listener = ExecutionScopedListener(7, inner)
        assert listener.accepts(make_event(execution_id=7))
        assert not listener.accepts(make_event(execution_id=8))
        assert not listener.accepts(make_event(execution_id=None))

    def test_inner_accepts_still_applies(self):
        class OnlyAfter(Listener):
            def accepts(self, event):
                return event.when is When.AFTER

        listener = ExecutionScopedListener(7, OnlyAfter())
        assert not listener.accepts(make_event(execution_id=7, when=When.BEFORE))
        assert listener.accepts(make_event(execution_id=7, when=When.AFTER))

    def test_value_pipeline_preserved(self):
        class Doubler(Listener):
            def on_event(self, event):
                return event.value * 2

        listener = scoped(7, Doubler())
        assert listener.on_event(make_event(execution_id=7)) == 2

    def test_rejects_non_listener(self):
        with pytest.raises(TypeError):
            ExecutionScopedListener(1, lambda e: e)


class TestSplitByExecution:
    def test_partitions_preserving_order(self):
        events = [
            make_event(execution_id=1, index=0),
            make_event(execution_id=2, index=1),
            make_event(execution_id=1, index=2),
            make_event(execution_id=None, index=3),
        ]
        parts = split_by_execution(events)
        assert [e.index for e in parts[1]] == [0, 2]
        assert [e.index for e in parts[2]] == [1]
        assert [e.index for e in parts[None]] == [3]


class TestEventMatches:
    def test_matches_execution_id(self):
        event = make_event(execution_id=4)
        assert event.matches(execution_id=4)
        assert not event.matches(execution_id=5)
        assert event.matches()  # unspecified: matches anything


def small_map():
    return Map(
        Split(lambda v: [v, v + 1], name="fs"),
        Seq(Execute(lambda v: v * 10, name="fe")),
        Merge(sum, name="fm"),
    )


class TestInterpreterStamping:
    def test_every_event_carries_its_execution_id(self):
        platform = SimulatedPlatform(parallelism=2)
        recorder = EventRecorder()
        platform.add_listener(recorder)
        execution = Execution(platform.new_future())
        future = submit(small_map(), 3, platform, execution=execution)
        assert future.get() == 70
        events = recorder.events
        assert events
        assert all(e.execution_id == execution.id for e in events)

    def test_concurrent_executions_partition_cleanly(self):
        platform = SimulatedPlatform(parallelism=2)
        recorder = EventRecorder()
        platform.add_listener(recorder)
        exec_a = Execution(platform.new_future())
        exec_b = Execution(platform.new_future())
        future_a = submit(small_map(), 1, platform, execution=exec_a)
        future_b = submit(small_map(), 5, platform, execution=exec_b)
        assert future_a.get() == 30
        assert future_b.get() == 110
        for execution in (exec_a, exec_b):
            events = recorder.for_execution(execution.id)
            assert events
            assert check_balanced(events)
        # The two scoped streams cover the full record exactly.
        assert len(recorder.for_execution(exec_a.id)) + len(
            recorder.for_execution(exec_b.id)
        ) == len(recorder)

    def test_scoped_recorders_see_only_their_execution(self):
        platform = SimulatedPlatform(parallelism=2)
        exec_a = Execution(platform.new_future())
        exec_b = Execution(platform.new_future())
        rec_a = EventRecorder()
        platform.add_listener(scoped(exec_a.id, rec_a))
        submit(small_map(), 1, platform, execution=exec_a).get()
        submit(small_map(), 5, platform, execution=exec_b).get()
        assert len(rec_a) > 0
        assert all(e.execution_id == exec_a.id for e in rec_a.events)
