"""Unit tests for the ready-made listeners."""

import logging
import threading

from repro.events import (
    CountingListener,
    EventBus,
    FilteredListener,
    GenericListener,
    LatchListener,
    LoggingListener,
    ValueTransformListener,
    When,
    Where,
)
from repro.events.types import Event


def make_event(value=0, kind="seq", when=When.BEFORE, where=Where.SKELETON, index=0):
    return Event(
        skeleton=None, kind=kind, when=when, where=where,
        index=index, parent_index=None, value=value, timestamp=0.0,
    )


class TestGenericListener:
    def test_handler_receives_paper_signature(self):
        captured = {}

        class L(GenericListener):
            def handler(self, param, trace, i, when, where, *, event):
                captured.update(param=param, i=i, when=when, where=where)
                return param

        L().on_event(make_event(value=9, index=4, when=When.AFTER))
        assert captured == {
            "param": 9, "i": 4, "when": When.AFTER, "where": Where.SKELETON
        }

    def test_default_handler_is_identity(self):
        assert GenericListener().on_event(make_event(value=11)) == 11


class TestFilteredListener:
    def test_filters_by_kind(self):
        inner = CountingListener()
        f = FilteredListener(inner, kind="map")
        assert not f.accepts(make_event(kind="seq"))
        assert f.accepts(make_event(kind="map"))

    def test_predicate(self):
        inner = CountingListener()
        f = FilteredListener(inner, predicate=lambda e: e.index > 2)
        assert not f.accepts(make_event(index=1))
        assert f.accepts(make_event(index=3))

    def test_delegates_on_event(self):
        inner = CountingListener()
        FilteredListener(inner).on_event(make_event())
        assert inner.total() == 1


class TestCountingListener:
    def test_counts_by_label(self):
        c = CountingListener()
        bus = EventBus()
        bus.add_listener(c)
        bus.publish(make_event(kind="map", where=Where.SPLIT))
        bus.publish(make_event(kind="map", where=Where.SPLIT))
        bus.publish(make_event(kind="seq"))
        assert c.counts["map@bs"] == 2
        assert c.counts["seq@b"] == 1
        assert c.total() == 3


class TestLatchListener:
    def test_latch_matches(self):
        latch = LatchListener(lambda e: e.index == 5)
        latch.on_event(make_event(index=1))
        assert not latch.wait(timeout=0.01)
        latch.on_event(make_event(index=5))
        assert latch.wait(timeout=0.01)
        assert latch.matched.index == 5

    def test_latch_from_other_thread(self):
        latch = LatchListener(lambda e: True)
        t = threading.Thread(target=lambda: latch.on_event(make_event()))
        t.start()
        assert latch.wait(timeout=2.0)
        t.join()


class TestValueTransformListener:
    def test_transforms_matching(self):
        l = ValueTransformListener(lambda v: v * 2, kind="seq")
        assert l.on_event(make_event(value=21)) == 42

    def test_skips_non_matching(self):
        l = ValueTransformListener(lambda v: v * 2, kind="map")
        assert not l.accepts(make_event(kind="seq"))


class TestLoggingListener:
    def test_logs_identification(self, caplog):
        listener = LoggingListener(logging.getLogger("test.events"))
        with caplog.at_level(logging.INFO, logger="test.events"):
            out = listener.on_event(make_event(value=3, index=7))
        assert out == 3
        text = "\n".join(r.getMessage() for r in caplog.records)
        assert "INDEX: 7" in text
        assert "WHEN/WHERE" in text
