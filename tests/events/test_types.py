"""Unit tests for the event model (labels, matching, enums)."""

from repro.events.types import Event, When, Where, event_label


def make_event(**kw):
    defaults = dict(
        skeleton=None,
        kind="map",
        when=When.BEFORE,
        where=Where.SPLIT,
        index=3,
        parent_index=None,
        value=42,
        timestamp=1.5,
    )
    defaults.update(kw)
    return Event(**defaults)


class TestEventLabel:
    def test_seq_before(self):
        assert event_label("seq", When.BEFORE, Where.SKELETON) == "seq@b"

    def test_seq_after(self):
        assert event_label("seq", When.AFTER, Where.SKELETON) == "seq@a"

    def test_map_after_split(self):
        assert event_label("map", When.AFTER, Where.SPLIT) == "map@as"

    def test_map_before_merge(self):
        assert event_label("map", When.BEFORE, Where.MERGE) == "map@bm"

    def test_while_condition(self):
        assert event_label("while", When.AFTER, Where.CONDITION) == "while@ac"

    def test_nested(self):
        assert event_label("map", When.BEFORE, Where.NESTED) == "map@bn"

    def test_event_label_property(self):
        assert make_event().label == "map@bs"


class TestEventPredicates:
    def test_is_before(self):
        assert make_event(when=When.BEFORE).is_before()
        assert not make_event(when=When.BEFORE).is_after()

    def test_is_after(self):
        assert make_event(when=When.AFTER).is_after()

    def test_matches_kind(self):
        assert make_event().matches(kind="map")
        assert not make_event().matches(kind="seq")

    def test_matches_when_where(self):
        e = make_event()
        assert e.matches(when=When.BEFORE, where=Where.SPLIT)
        assert not e.matches(when=When.AFTER)
        assert not e.matches(where=Where.MERGE)

    def test_matches_none_is_wildcard(self):
        assert make_event().matches()

    def test_extra_defaults_empty(self):
        assert dict(make_event().extra) == {}


class TestEnums:
    def test_when_codes(self):
        assert When.BEFORE.value == "b"
        assert When.AFTER.value == "a"

    def test_where_codes(self):
        assert Where.SKELETON.value == ""
        assert Where.SPLIT.value == "s"
        assert Where.MERGE.value == "m"
        assert Where.CONDITION.value == "c"
        assert Where.NESTED.value == "n"
