"""Unit + property tests for pretty printing, stats and the reference
evaluator."""

import pytest
from hypothesis import given

from repro import (
    DivideAndConquer,
    Farm,
    For,
    Fork,
    If,
    Map,
    Pipe,
    Seq,
    While,
    sequential_evaluate,
)
from repro.skeletons.visitors import pretty_print, structure_stats
from tests.conftest import build_program, program_descriptions


def leaf():
    return Seq(lambda v: v + 1)


class TestPrettyPrint:
    def test_paper_example(self):
        skel = Map(lambda v: [v], Map(lambda v: [v], leaf(), sum), sum)
        assert pretty_print(skel) == "map(fs, map(fs, seq(fe), fm), fm)"

    def test_all_patterns(self):
        assert pretty_print(leaf()) == "seq(fe)"
        assert pretty_print(Farm(leaf())) == "farm(seq(fe))"
        assert pretty_print(Pipe(leaf(), leaf())) == "pipe(seq(fe), seq(fe))"
        assert pretty_print(While(lambda v: False, leaf())) == "while(fc, seq(fe))"
        assert pretty_print(For(3, leaf())) == "for(3, seq(fe))"
        assert (
            pretty_print(If(lambda v: True, leaf(), leaf()))
            == "if(fc, seq(fe), seq(fe))"
        )
        assert (
            pretty_print(Fork(lambda v: [v, v], [leaf(), leaf()], sum))
            == "fork(fs, {seq(fe), seq(fe)}, fm)"
        )
        assert (
            pretty_print(
                DivideAndConquer(lambda v: False, lambda v: [v], leaf(), sum)
            )
            == "d&c(fc, fs, seq(fe), fm)"
        )


class TestStats:
    def test_counts(self):
        skel = Map(lambda v: [v], Pipe(leaf(), leaf()), sum)
        stats = structure_stats(skel)
        assert stats["map"] == 1
        assert stats["pipe"] == 1
        assert stats["seq"] == 2
        assert stats["nodes"] == 4
        assert stats["muscles"] == 4  # split, merge, two executes
        assert stats["depth"] == 3


class TestReferenceEvaluator:
    def test_seq(self):
        assert sequential_evaluate(Seq(lambda v: v * 2), 21) == 42

    def test_pipe_order(self):
        skel = Pipe(Seq(lambda v: v + 1), Seq(lambda v: v * 10))
        assert sequential_evaluate(skel, 1) == 20

    def test_for(self):
        assert sequential_evaluate(For(3, Seq(lambda v: v * 2)), 1) == 8

    def test_while(self):
        skel = While(lambda v: v < 10, Seq(lambda v: v + 4))
        assert sequential_evaluate(skel, 0) == 12

    def test_if(self):
        skel = If(lambda v: v > 0, Seq(lambda v: "pos"), Seq(lambda v: "neg"))
        assert sequential_evaluate(skel, 1) == "pos"
        assert sequential_evaluate(skel, -1) == "neg"

    def test_map(self):
        skel = Map(lambda v: [v, v + 1, v + 2], Seq(lambda v: v * 10), sum)
        assert sequential_evaluate(skel, 1) == 10 + 20 + 30

    def test_fork_mismatch_raises(self):
        from repro.errors import ExecutionError

        skel = Fork(lambda v: [v], [leaf(), leaf()], sum)
        with pytest.raises(ExecutionError):
            sequential_evaluate(skel, 0)

    def test_dac_mergesort(self):
        skel = DivideAndConquer(
            lambda xs: len(xs) > 2,
            lambda xs: [xs[: len(xs) // 2], xs[len(xs) // 2 :]],
            Seq(sorted),
            lambda parts: sorted(x for p in parts for x in p),
        )
        data = [5, 3, 8, 1, 9, 2, 7]
        assert sequential_evaluate(skel, data) == sorted(data)

    def test_on_muscle_hook_counts(self):
        calls = []
        skel = Map(lambda v: [v, v], Seq(lambda v: v), lambda rs: rs)
        sequential_evaluate(skel, 0, on_muscle=lambda m, v: calls.append(m.kind))
        assert len(calls) == 4  # split + 2 executes + merge

    @given(program_descriptions)
    def test_property_deterministic(self, desc):
        """Two fresh constructions of the same program agree."""
        a = sequential_evaluate(build_program(desc), 7)
        b = sequential_evaluate(build_program(desc), 7)
        assert a == b
