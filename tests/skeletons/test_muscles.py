"""Unit tests for muscle wrappers and coercion."""

import pytest

from repro.errors import MuscleTypeError
from repro.skeletons.muscles import (
    Condition,
    Execute,
    Merge,
    MuscleKind,
    Split,
    as_condition,
    as_execute,
    as_merge,
    as_split,
)


class TestIdentity:
    def test_uids_unique(self):
        a = Execute(lambda v: v)
        b = Execute(lambda v: v)
        assert a.uid != b.uid

    def test_named(self):
        m = Execute(lambda v: v, name="work")
        assert m.name == "work"

    def test_default_name_includes_fn_name(self):
        def crunch(v):
            return v

        m = Execute(crunch)
        assert m.name.startswith("crunch#")

    def test_lambda_name_sanitized(self):
        m = Execute(lambda v: v)
        assert "<" not in m.name

    def test_kind(self):
        assert Execute(lambda v: v).kind is MuscleKind.EXECUTE
        assert Split(lambda v: [v]).kind is MuscleKind.SPLIT
        assert Merge(lambda v: v).kind is MuscleKind.MERGE
        assert Condition(lambda v: True).kind is MuscleKind.CONDITION

    def test_non_callable_rejected(self):
        with pytest.raises(MuscleTypeError):
            Execute(42)


class TestExecution:
    def test_execute_passthrough(self):
        assert Execute(lambda v: v * 2)(21) == 42

    def test_split_normalizes_to_list(self):
        assert Split(lambda v: (1, 2))(None) == [1, 2]

    def test_split_rejects_empty(self):
        with pytest.raises(MuscleTypeError):
            Split(lambda v: [])(0)

    def test_split_rejects_none(self):
        with pytest.raises(MuscleTypeError):
            Split(lambda v: None)(0)

    def test_split_rejects_string(self):
        with pytest.raises(MuscleTypeError):
            Split(lambda v: "ab")(0)

    def test_split_rejects_non_iterable(self):
        with pytest.raises(MuscleTypeError):
            Split(lambda v: 5)(0)

    def test_merge_receives_list(self):
        seen = {}
        Merge(lambda parts: seen.update(got=parts))([1, 2, 3])
        assert seen["got"] == [1, 2, 3]

    def test_condition_coerces_bool(self):
        assert Condition(lambda v: 1)(0) is True
        assert Condition(lambda v: "")(0) is False


class TestCoercion:
    def test_wraps_plain_callable(self):
        m = as_execute(lambda v: v)
        assert isinstance(m, Execute)

    def test_passes_through_correct_muscle(self):
        m = Split(lambda v: [v])
        assert as_split(m) is m

    def test_rejects_wrong_flavour(self):
        with pytest.raises(MuscleTypeError):
            as_merge(Split(lambda v: [v]))

    def test_rejects_non_callable(self):
        with pytest.raises(MuscleTypeError):
            as_condition(3)

    def test_all_coercers(self):
        assert isinstance(as_execute(lambda v: v), Execute)
        assert isinstance(as_split(lambda v: [v]), Split)
        assert isinstance(as_merge(lambda v: v), Merge)
        assert isinstance(as_condition(lambda v: True), Condition)
