"""Unit tests for skeleton construction, structure and validation."""

import pytest

from repro import (
    DivideAndConquer,
    Farm,
    For,
    Fork,
    If,
    Map,
    Pipe,
    Seq,
    While,
)
from repro.errors import SkeletonDefinitionError
from repro.skeletons.muscles import Condition, Merge, Split


def leaf():
    return Seq(lambda v: v)


class TestConstruction:
    def test_seq(self):
        s = Seq(lambda v: v + 1)
        assert s.kind == "seq"
        assert len(s.own_muscles) == 1

    def test_farm_requires_skeleton(self):
        with pytest.raises(SkeletonDefinitionError):
            Farm(lambda v: v)

    def test_pipe_needs_two_stages(self):
        with pytest.raises(SkeletonDefinitionError):
            Pipe(leaf())

    def test_pipe_accepts_list(self):
        p = Pipe([leaf(), leaf(), leaf()])
        assert len(p.stages) == 3

    def test_for_rejects_negative(self):
        with pytest.raises(SkeletonDefinitionError):
            For(-1, leaf())

    def test_for_zero_allowed(self):
        assert For(0, leaf()).times == 0

    def test_while_structure(self):
        w = While(lambda v: False, leaf())
        assert w.kind == "while"
        assert isinstance(w.condition, Condition)

    def test_if_children(self):
        i = If(lambda v: True, leaf(), leaf())
        assert len(i.children) == 2

    def test_map_muscles(self):
        m = Map(lambda v: [v], leaf(), lambda rs: rs)
        assert isinstance(m.split, Split)
        assert isinstance(m.merge, Merge)

    def test_fork_requires_sequence(self):
        with pytest.raises(SkeletonDefinitionError):
            Fork(lambda v: [v], leaf(), lambda rs: rs)

    def test_fork_children(self):
        f = Fork(lambda v: [v, v], [leaf(), leaf()], lambda rs: rs)
        assert len(f.children) == 2

    def test_dac_muscles(self):
        d = DivideAndConquer(
            lambda v: False, lambda v: [v], leaf(), lambda rs: rs
        )
        assert len(d.own_muscles) == 3


class TestStructureQueries:
    def test_walk_preorder(self):
        inner = leaf()
        outer = Farm(Pipe(inner, leaf()))
        kinds = [n.kind for n in outer.walk()]
        assert kinds == ["farm", "pipe", "seq", "seq"]

    def test_node_count_and_depth(self):
        m = Map(lambda v: [v], Map(lambda v: [v], leaf(), lambda r: r), lambda r: r)
        assert m.node_count() == 3
        assert m.depth() == 3

    def test_muscles_deduplicated(self):
        fm = Merge(lambda rs: rs)
        m = Map(lambda v: [v], Map(lambda v: [v], leaf(), fm), fm)
        names = [x.name for x in m.muscles()]
        assert len(names) == len(set(names))
        # shared merge counted once
        assert sum(1 for x in m.muscles() if x is fm) == 1

    def test_input_without_platform_raises(self):
        with pytest.raises(SkeletonDefinitionError):
            leaf().input(1)

    def test_bind_then_compute(self):
        from repro import SimulatedPlatform

        s = Seq(lambda v: v * 3)
        s.bind(SimulatedPlatform())
        assert s.compute(5) == 15
