"""Unit tests for the bench harness (scenario runner, fig1 builder, report)."""

import pytest

from repro.bench import (
    FIG1_NOW,
    PAPER_SCENARIOS,
    build_figure1_adg,
    comparison_table,
    format_row,
    run_twitter_scenario,
)


class TestFig1Builder:
    def test_shape(self):
        adg, index = build_figure1_adg()
        assert len(adg) == 17
        assert len(index["fe_1"]) == 3
        adg.validate()

    def test_snapshot_time_consistent(self):
        adg, _ = build_figure1_adg()
        for act in adg:
            if act.finished:
                assert act.end <= FIG1_NOW


class TestReport:
    def test_format_row(self):
        row = format_row("wct", 9.5, 9.469, "goal met")
        assert row == ("wct", "9.500", "9.469", "goal met")

    def test_format_none(self):
        assert format_row("x", None, 3)[1] == "-"

    def test_table_alignment(self):
        table = comparison_table(
            [format_row("a", 1.0, 2.0), format_row("bb", 10, 20)], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "metric" in lines[1]
        assert "-" in lines[2]


@pytest.mark.slow
class TestScenarioRunner:
    def test_cold_scenario(self):
        result = run_twitter_scenario("s1", goal=9.5, n_tweets=500)
        assert result.correct
        assert result.met_goal
        assert result.peak_active > 1
        assert result.first_increase_time == pytest.approx(7.63, abs=0.1)

    def test_warm_scenario_uses_snapshot(self):
        cold = run_twitter_scenario("s1", goal=9.5, n_tweets=500)
        warm = run_twitter_scenario(
            "s2", goal=9.5, n_tweets=500, initialize_from=cold.estimate_snapshot
        )
        assert warm.correct and warm.met_goal
        assert warm.first_active_rise < cold.first_increase_time

    def test_deterministic(self):
        a = run_twitter_scenario("s", goal=9.5, n_tweets=300)
        b = run_twitter_scenario("s", goal=9.5, n_tweets=300)
        assert a.lp_steps == b.lp_steps
        assert a.finish_wct == b.finish_wct

    def test_paper_table_complete(self):
        assert set(PAPER_SCENARIOS) == {
            "goal_without_init", "goal_with_init", "goal_10_5"
        }
