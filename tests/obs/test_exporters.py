"""Exporter round-trips: flight recorder JSONL and Prometheus files."""

import json

from repro.events.types import Event, When, Where
from repro.obs import (
    FlightRecorder,
    MetricsRegistry,
    Tracer,
    load_jsonl,
    trace_records,
    write_prometheus,
)
from repro.obs.exporters import event_record, span_record


def make_event(**kw):
    defaults = dict(
        skeleton=None,
        kind="map",
        when=When.BEFORE,
        where=Where.SPLIT,
        index=1,
        parent_index=None,
        value=[1, 2],
        timestamp=0.5,
        trace_id="tid",
        span_id="sid",
    )
    defaults.update(kw)
    return Event(**defaults)


class TestEventFraming:
    def test_event_record_fields(self):
        rec = event_record(make_event())
        assert rec["type"] == "event"
        assert rec["label"] == "map@bs"
        assert rec["trace_id"] == "tid"
        assert "value" not in rec  # payloads excluded by default

    def test_include_value_serializes_safely(self):
        rec = event_record(make_event(value={1: object()}), include_value=True)
        assert isinstance(rec["value"]["1"], str)  # repr fallback

    def test_extra_is_preserved(self):
        rec = event_record(make_event(extra={"started_at": 0.25}))
        assert rec["extra"] == {"started_at": 0.25}


class TestFlightRecorder:
    def test_round_trip_events_spans_metrics(self, tmp_path):
        flight = FlightRecorder()
        flight.on_event(make_event())
        flight.on_batch([make_event(index=2), make_event(index=3)])
        tracer = Tracer(enabled=True)
        tracer.start_span("op", context=tracer.new_context()).finish()
        flight.record_tracer(tracer)
        reg = MetricsRegistry()
        reg.counter("c").inc()
        flight.record_metrics(reg)
        path = tmp_path / "flight.jsonl"
        n = flight.dump(str(path))
        records = load_jsonl(str(path))
        assert len(records) == n == 5
        assert [r["type"] for r in records] == [
            "event", "event", "event", "span", "metrics",
        ]
        assert records[-1]["snapshot"]["c"]["samples"][0]["value"] == 1.0

    def test_trace_query(self):
        flight = FlightRecorder()
        flight.on_event(make_event(trace_id="a"))
        flight.on_event(make_event(trace_id="b"))
        tracer = Tracer(enabled=True)
        tracer.record_span("muscle", "a", "s", None, 0.0, 1.0)
        flight.record_tracer(tracer)
        records = flight.records()
        mine = trace_records(records, "a")
        assert len(mine) == 2
        assert {r["type"] for r in mine} == {"event", "span"}
        assert len(trace_records(records, "a", type="span")) == 1

    def test_bounded_and_drop_counting(self):
        flight = FlightRecorder(max_records=2)
        for i in range(5):
            flight.on_event(make_event(index=i))
        assert len(flight) == 2
        assert flight.dropped == 3

    def test_dumps_is_valid_jsonl(self):
        flight = FlightRecorder()
        flight.on_event(make_event())
        lines = flight.dumps().strip().splitlines()
        assert [json.loads(line)["type"] for line in lines] == ["event"]

    def test_span_record_sanitizes_attrs(self):
        tracer = Tracer(enabled=True)
        span = tracer.start_span("x", blob=object())
        span.finish()
        rec = span_record(tracer.finished()[0])
        assert isinstance(rec["attrs"]["blob"], str)


class TestPrometheusFile:
    def test_write_prometheus(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c_total", "help").inc(7)
        path = tmp_path / "metrics.prom"
        text = write_prometheus(str(path), reg)
        assert path.read_text() == text
        assert "c_total 7" in text
