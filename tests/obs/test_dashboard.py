"""Dashboard rendering and the BusInstrument/Observability wiring."""

from repro import ConstantCostModel, Execute, Map, Merge, SimulatedPlatform, Split, run
from repro.events.types import Event, When, Where
from repro.obs import (
    BusInstrument,
    MetricsRegistry,
    Observability,
    Tracer,
    render_dashboard,
)


def make_event(**kw):
    defaults = dict(
        skeleton=None,
        kind="seq",
        when=When.AFTER,
        where=Where.SKELETON,
        index=1,
        parent_index=None,
        value=1,
        timestamp=1.0,
        trace_id="tid",
        span_id="sid",
    )
    defaults.update(kw)
    return Event(**defaults)


def sim_program(width=4):
    return Map(
        Split(lambda v, w=width: [v] * w, name="split"),
        Seq_leaf(),
        Merge(sum, name="merge"),
    )


def Seq_leaf():
    from repro import Seq

    return Seq(Execute(lambda v: v, name="leaf"))


class TestBusInstrument:
    def test_counts_events_by_label(self):
        reg = MetricsRegistry()
        inst = BusInstrument(reg)
        inst.on_event(make_event())
        inst.on_batch([make_event(), make_event(kind="map")])
        assert reg.get("repro_events_total").value(label="seq@a") == 2
        assert reg.get("repro_events_total").value(label="map@a") == 1
        assert reg.get("repro_event_batches_total").value() == 1

    def test_after_with_started_at_feeds_latency(self):
        reg = MetricsRegistry()
        inst = BusInstrument(reg)
        inst.on_event(make_event(timestamp=1.5, extra={"started_at": 1.0}))
        hist = reg.get("repro_muscle_latency_seconds")
        assert hist.count(kind="seq") == 1
        assert hist.sum(kind="seq") == 0.5

    def test_batch_records_one_span(self):
        reg = MetricsRegistry()
        tracer = Tracer(enabled=True)
        inst = BusInstrument(reg, tracer=tracer)
        inst.on_batch([make_event(timestamp=1.0), make_event(timestamp=3.0)])
        (span,) = tracer.finished()
        assert span.name == "event_batch"
        assert span.trace_id == "tid"
        assert span.duration == 2.0
        assert span.attrs["size"] == 2


class TestObservabilityFacade:
    def test_attach_detach_cycle(self):
        platform = SimulatedPlatform(parallelism=2, cost_model=ConstantCostModel(1.0))
        obs = Observability(sample_rate=1.0)
        obs.attach(platform)
        assert obs.attach(platform) is obs  # idempotent
        assert platform.tracer.enabled
        run(sim_program(), 3, platform)
        assert obs.metrics.get("repro_events_total").total() > 0
        assert len(obs.flight) > 0
        obs.detach()
        assert not platform.tracer.enabled
        before = obs.metrics.get("repro_events_total").total()
        run(sim_program(), 3, platform)
        assert obs.metrics.get("repro_events_total").total() == before

    def test_second_platform_rejected_while_attached(self):
        import pytest

        a = SimulatedPlatform(parallelism=1, cost_model=ConstantCostModel(1.0))
        b = SimulatedPlatform(parallelism=1, cost_model=ConstantCostModel(1.0))
        obs = Observability()
        obs.attach(a)
        with pytest.raises(RuntimeError):
            obs.attach(b)

    def test_export_surfaces(self, tmp_path):
        platform = SimulatedPlatform(parallelism=2, cost_model=ConstantCostModel(1.0))
        obs = Observability(sample_rate=1.0)
        obs.attach(platform)
        run(sim_program(), 3, platform)
        assert "repro_events_total" in obs.prometheus()
        prom = tmp_path / "m.prom"
        obs.export_prometheus(str(prom))
        assert "# TYPE repro_events_total counter" in prom.read_text()
        flight = tmp_path / "f.jsonl"
        n = obs.export_jsonl(str(flight))
        assert n == len(flight.read_text().strip().splitlines())


class TestDashboard:
    def test_render_plain_registry(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(5)
        reg.histogram("lat").observe(0.2)
        frame = render_dashboard(reg, title="test frame")
        assert "test frame" in frame
        assert "c = 5" in frame
        assert "p95" in frame

    def test_render_with_spans_and_timeline(self):
        reg = MetricsRegistry()
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        frame = render_dashboard(
            reg, tracer=tracer, lp_steps=[(0.0, 1), (1.0, 3), (2.0, 2)]
        )
        assert "outer" in frame and "inner" in frame
        assert "LP timeline" in frame

    def test_live_dashboard_from_facade(self):
        platform = SimulatedPlatform(parallelism=2, cost_model=ConstantCostModel(1.0))
        obs = Observability(sample_rate=1.0)
        obs.attach(platform)
        run(sim_program(), 3, platform)
        dash = obs.dashboard(title="live")
        frame = dash.render()
        assert "live · frame 1" in frame
        assert "repro_events_total" in frame
