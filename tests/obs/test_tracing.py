"""Unit tests of the tracer: identity, sampling, spans, ring buffer."""

import pytest

from repro.obs import Span, TraceContext, Tracer, new_span_id, new_trace_id
from repro.obs.tracing import NOOP_SPAN, walk_trace


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestIdentity:
    def test_ids_have_fixed_width(self):
        assert len(new_trace_id()) == 16
        assert len(new_span_id()) == 8

    def test_context_is_immutable(self):
        ctx = TraceContext("t", "s")
        with pytest.raises(AttributeError):
            ctx.trace_id = "other"

    def test_child_keeps_trace_and_sampling(self):
        ctx = TraceContext("t", "s", sampled=False)
        child = ctx.child()
        assert child.trace_id == "t"
        assert child.span_id != "s"
        assert child.sampled is False

    def test_disabled_tracer_still_mints_identity(self):
        tracer = Tracer(enabled=False)
        ctx = tracer.new_context()
        assert ctx.trace_id and ctx.span_id
        assert ctx.sampled is False

    def test_enabled_tracer_samples(self):
        tracer = Tracer(enabled=True, sample_rate=1.0)
        assert tracer.new_context().sampled is True
        tracer.configure(sample_rate=0.0)
        assert tracer.new_context().sampled is False


class TestSpans:
    def test_disabled_start_span_is_shared_noop(self):
        tracer = Tracer(enabled=False)
        span = tracer.start_span("x")
        assert span is NOOP_SPAN
        assert not span.recording
        span.set_attr("k", 1)
        span.finish()
        assert len(tracer) == 0

    def test_unsampled_context_yields_noop(self):
        tracer = Tracer(enabled=True)
        ctx = TraceContext("t", "s", sampled=False)
        assert tracer.start_span("x", context=ctx) is NOOP_SPAN

    def test_span_records_on_finish(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock, enabled=True)
        ctx = tracer.new_context()
        span = tracer.start_span("op", context=ctx, tenant="acme")
        clock.t = 2.0
        span.finish()
        (got,) = tracer.finished()
        assert got.name == "op"
        assert got.trace_id == ctx.trace_id
        assert got.parent_id == ctx.span_id
        assert got.duration == pytest.approx(2.0)
        assert got.attrs == {"tenant": "acme"}
        assert got.status == "ok"

    def test_context_manager_marks_errors(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(RuntimeError):
            with tracer.start_span("boom"):
                raise RuntimeError("nope")
        (got,) = tracer.finished()
        assert got.status == "error"
        assert "error" in got.attrs

    def test_active_span_nesting_via_thread_local(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        assert tracer.current() is None

    def test_double_finish_is_idempotent(self):
        tracer = Tracer(enabled=True)
        span = tracer.start_span("x")
        span.finish()
        span.finish()
        assert len(tracer) == 1

    def test_explicit_start_and_end_times(self):
        tracer = Tracer(enabled=True)
        span = tracer.start_span("x", start=10.0)
        span.finish(end=11.5)
        assert tracer.finished()[0].duration == pytest.approx(1.5)


class TestRingBuffer:
    def test_ring_drops_and_counts(self):
        tracer = Tracer(enabled=True, max_spans=2)
        for _ in range(5):
            tracer.start_span("x").finish()
        assert len(tracer) == 2
        assert tracer.dropped == 3

    def test_drain_empties(self):
        tracer = Tracer(enabled=True)
        tracer.start_span("x").finish()
        assert len(tracer.drain()) == 1
        assert len(tracer) == 0

    def test_trace_filter(self):
        tracer = Tracer(enabled=True)
        a = tracer.new_context()
        b = tracer.new_context()
        tracer.start_span("x", context=a).finish()
        tracer.start_span("y", context=b).finish()
        assert [s.name for s in tracer.trace(a.trace_id)] == ["x"]


class TestRemoteReemission:
    def test_record_span_lands_fully_formed(self):
        tracer = Tracer(enabled=True)
        tracer.record_span(
            "muscle", "tid", "sid", "pid", 1.0, 2.0,
            status="error", attrs={"worker": 3},
        )
        (got,) = tracer.finished()
        assert (got.name, got.trace_id, got.parent_id) == ("muscle", "tid", "pid")
        assert got.duration == pytest.approx(1.0)
        assert got.status == "error"
        assert got.attrs == {"worker": 3}


class TestWalkTrace:
    def test_tree_order_and_depths(self):
        spans = [
            Span("root", "t", "r", None, 0.0),
            Span("child", "t", "c", "r", 1.0),
            Span("grand", "t", "g", "c", 2.0),
            Span("orphan", "t", "o", "gone", 3.0),
        ]
        walked = [(d, s.name) for d, s in walk_trace(spans)]
        assert walked == [
            (0, "root"), (1, "child"), (2, "grand"), (0, "orphan"),
        ]
