"""Unit tests of the metrics registry: families, labels, quantiles, export."""

import threading

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    prometheus_text,
)


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("requests_total")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_labeled_children_are_independent(self):
        c = Counter("events_total")
        c.inc(label="map@bs")
        c.inc(3, label="farm@as")
        assert c.value(label="map@bs") == 1
        assert c.value(label="farm@as") == 3
        assert c.value(label="missing") == 0
        assert c.total() == 4

    def test_label_order_does_not_matter(self):
        c = Counter("x")
        c.inc(a="1", b="2")
        assert c.value(b="2", a="1") == 1

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_concurrent_increments_are_lost_update_free(self):
        c = Counter("x")

        def hammer():
            for _ in range(1000):
                c.inc(worker="w")

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value(worker="w") == 8000


class TestGauge:
    def test_set_and_inc_dec(self):
        g = Gauge("live")
        g.set(5)
        g.inc(2)
        g.dec()
        assert g.value() == 6

    def test_callback_children_sample_lazily(self):
        g = Gauge("view")
        state = {"n": 1}
        g.set_function(lambda: float(state["n"]), stat="n")
        assert g.value(stat="n") == 1
        state["n"] = 42
        assert g.value(stat="n") == 42

    def test_set_replaces_callback(self):
        g = Gauge("view")
        g.set_function(lambda: 7.0)
        g.set(1.0)
        assert g.value() == 1.0


class TestHistogram:
    def test_count_sum_and_bucket_placement(self):
        h = Histogram("lat", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count() == 4
        assert h.sum() == pytest.approx(55.55)
        ((_, counts, _, _),) = h.samples()
        assert counts == [1, 1, 1, 1]  # one per bucket incl. +Inf

    def test_quantiles_interpolate(self):
        h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        for _ in range(100):
            h.observe(1.5)
        # All mass in the (1, 2] bucket: p50 interpolates to its middle.
        assert h.quantile(0.5) == pytest.approx(1.5)
        assert h.quantile(1.0) == pytest.approx(2.0)

    def test_quantile_empty_is_none(self):
        assert Histogram("lat").quantile(0.5) is None

    def test_quantile_clamps_to_last_finite_bound(self):
        h = Histogram("lat", buckets=(1.0,))
        h.observe(100.0)
        assert h.quantile(0.99) == 1.0

    def test_percentiles_keys(self):
        h = Histogram("lat")
        h.observe(0.02)
        assert set(h.percentiles()) == {"p50", "p95", "p99"}

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("lat", buckets=(2.0, 1.0))

    def test_default_buckets_are_ascending(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)


class TestRegistry:
    def test_get_or_create_returns_same_family(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ValueError):
            reg.gauge("a")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c", "help").inc(label="x")
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["c"]["kind"] == "counter"
        assert snap["c"]["samples"] == [{"labels": {"label": "x"}, "value": 1.0}]
        assert snap["h"]["samples"][0]["count"] == 1

    def test_unregister(self):
        reg = MetricsRegistry()
        reg.counter("a")
        assert reg.unregister("a")
        assert not reg.unregister("a")
        assert reg.names() == []


class TestPrometheusExposition:
    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "a counter").inc(2, tenant="acme")
        reg.gauge("g").set(1.5)
        text = prometheus_text(reg)
        assert "# HELP c_total a counter" in text
        assert "# TYPE c_total counter" in text
        assert 'c_total{tenant="acme"} 2' in text
        assert "g 1.5" in text

    def test_histogram_lines_are_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(1.5)
        h.observe(99.0)
        text = prometheus_text(reg)
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="2"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_count 3" in text

    def test_label_values_are_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(label='sa"id\nx')
        text = prometheus_text(reg)
        assert '\\"' in text and "\\n" in text
