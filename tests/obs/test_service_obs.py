"""Service-layer observability: stats mirroring, atomic snapshots, spans."""

import threading

from repro import (
    ConstantCostModel,
    Execute,
    Map,
    Merge,
    QoS,
    Seq,
    SimulatedPlatform,
    SkeletonService,
    Split,
)
from repro.obs import Observability
from repro.service.stats import ServiceStats


def program(width=3):
    return Map(
        Split(lambda v, w=width: [v] * w, name="split"),
        Seq(Execute(lambda v: v, name="leaf")),
        Merge(sum, name="merge"),
    )


def obs_service(**kwargs):
    platform = SimulatedPlatform(
        parallelism=1, cost_model=ConstantCostModel(1.0), max_parallelism=4
    )
    obs = Observability(sample_rate=1.0)
    return SkeletonService(platform=platform, observability=obs, **kwargs), obs


class TestStatsAtomicSnapshot:
    def test_as_dict_is_internally_consistent_under_hammering(self):
        """Aggregates always agree with the tenant rows they sum over."""
        stats = ServiceStats()
        stop = threading.Event()

        def writer():
            i = 0
            while not stop.is_set():
                stats.record_submitted("t")
                stats.record_admitted("t", float(i))
                stats.record_finished("t", "completed", float(i + 1), goal_met=True)
                i += 1

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            for _ in range(300):
                snap = stats.as_dict()
                row_total = sum(
                    row["completed"] for row in snap["tenants"].values()
                )
                assert snap["completed"] == row_total
                if snap["goal_miss_rate"] is not None:
                    assert snap["goal_miss_rate"] == 0.0
        finally:
            stop.set()
            for t in threads:
                t.join()

    def test_registry_mirror_matches_counters(self):
        from repro.obs import MetricsRegistry

        stats = ServiceStats()
        reg = MetricsRegistry()
        stats.bind_registry(reg)
        stats.record_submitted("acme")
        stats.record_admitted("acme", 0.0)
        stats.record_finished("acme", "completed", 1.0, goal_met=False)
        lifecycle = reg.get("repro_service_lifecycle_total")
        assert lifecycle.value(tenant="acme", event="submitted") == 1
        assert lifecycle.value(tenant="acme", event="completed") == 1
        assert lifecycle.value(tenant="acme", event="goal_missed") == 1
        agg = reg.get("repro_service_aggregate")
        assert agg.value(stat="completed") == 1.0
        assert agg.value(stat="goal_miss_rate") == 1.0


class TestServiceInstrumentation:
    def test_execution_spans_and_duration_histogram(self):
        service, obs = obs_service()
        handle = service.submit(program(), 2, qos=QoS.wall_clock(100.0))
        assert handle.result() == 6
        service.shutdown()
        spans = obs.tracer.finished()
        roots = [s for s in spans if s.name == "execution"]
        assert len(roots) == 1
        assert roots[0].status == "ok"
        assert roots[0].attrs["tenant"] == "default"
        assert [s for s in spans if s.name == "rebalance"]
        hist = obs.metrics.get("repro_execution_duration_seconds")
        assert hist.count(outcome="completed", tenant="default") == 1

    def test_rebalance_spans_share_one_service_trace(self):
        service, obs = obs_service()
        for i in range(3):
            service.submit(program(), i, qos=QoS.wall_clock(100.0)).result()
        service.shutdown()
        rebalances = [s for s in obs.tracer.finished() if s.name == "rebalance"]
        assert len(rebalances) >= 3
        assert len({s.trace_id for s in rebalances}) == 1

    def test_rejected_submission_closes_span(self):
        from repro.service import TenantQuota

        service, obs = obs_service(
            quotas={"acme": TenantQuota(max_active=1, max_pending=1)}
        )
        first = service.submit(program(), 1, tenant="acme")
        second = service.submit(program(), 2, tenant="acme")
        rejected = service.submit(program(), 3, tenant="acme")
        assert rejected.status().name == "REJECTED"
        first.result()
        second.result()
        service.shutdown()
        roots = {
            s.attrs["execution_id"]: s
            for s in obs.tracer.finished()
            if s.name == "execution"
        }
        assert len(roots) == 3
        assert roots[rejected.execution_id].status == "rejected"
        assert roots[first.execution_id].status == "ok"

    def test_plan_cache_gauge_is_a_live_view(self):
        service, obs = obs_service()
        service.submit(program(), 1, qos=QoS.wall_clock(100.0)).result()
        service.shutdown()
        gauge = obs.metrics.get("repro_plan_cache")
        stats = service.plan_cache.stats_dict()
        for key, value in stats.items():
            assert gauge.value(stat=key) == float(value)

    def test_stats_as_dict_unchanged_without_observability(self):
        platform = SimulatedPlatform(
            parallelism=1, cost_model=ConstantCostModel(1.0), max_parallelism=4
        )
        service = SkeletonService(platform=platform)
        service.submit(program(), 2, qos=QoS.wall_clock(100.0)).result()
        service.shutdown()
        snap = service.stats.as_dict()
        assert snap["completed"] == 1
        assert snap["tenants"]["default"]["completed"] == 1
        assert snap["throughput"] is None or snap["throughput"] > 0
