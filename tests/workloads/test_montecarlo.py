"""Unit tests for the Monte-Carlo pi workload."""

import math

import pytest

from repro import SimulatedPlatform, ThreadPoolPlatform, run
from repro.errors import WorkloadError
from repro.workloads.montecarlo import MonteCarloPiApp


class TestSplit:
    def test_batches_cover_all_samples(self):
        app = MonteCarloPiApp(batches=7)
        parts = app.fs_batch(( 99, 1000 ))
        assert sum(n for _s, n in parts) == 1000

    def test_remainder_distributed(self):
        app = MonteCarloPiApp(batches=4)
        parts = app.fs_batch((1, 10))
        assert sorted(n for _s, n in parts) == [2, 2, 3, 3]

    def test_batch_seeds_unique(self):
        app = MonteCarloPiApp(batches=8)
        seeds = [s for s, _n in app.fs_batch((7, 800))]
        assert len(set(seeds)) == len(seeds)

    def test_rejects_bad_batches(self):
        with pytest.raises(WorkloadError):
            MonteCarloPiApp(batches=0)


class TestEstimation:
    def test_pi_estimate_reasonable(self):
        app = MonteCarloPiApp(batches=8)
        platform = SimulatedPlatform(parallelism=4)
        pi = run(app.skeleton, (2014, 40_000), platform)
        assert abs(pi - math.pi) < 0.05

    def test_deterministic_given_seed(self):
        app = MonteCarloPiApp(batches=4)
        p1 = run(app.skeleton, (5, 10_000), SimulatedPlatform(parallelism=2))
        p2 = run(app.skeleton, (5, 10_000), SimulatedPlatform(parallelism=4))
        assert p1 == p2  # parallelism must not change the result

    def test_threads_match_simulator(self):
        app = MonteCarloPiApp(batches=4)
        sim = run(app.skeleton, (5, 5_000), SimulatedPlatform())
        with ThreadPoolPlatform(parallelism=4) as pool:
            thr = run(app.skeleton, (5, 5_000), pool)
        assert sim == thr

    def test_zero_samples(self):
        app = MonteCarloPiApp(batches=4)
        assert run(app.skeleton, (1, 0), SimulatedPlatform()) == 0.0

    def test_cost_model_scales_with_samples(self):
        app = MonteCarloPiApp()
        model = app.cost_model(per_sample=1e-5)
        small = model.duration(app.fe_sample, (1, 100))
        large = model.duration(app.fe_sample, (1, 10_000))
        assert large == pytest.approx(small * 100)
