"""Unit tests for the NumPy block-matmul workload."""

import numpy as np
import pytest

from repro import SimulatedPlatform, ThreadPoolPlatform, run
from repro.errors import MuscleExecutionError, WorkloadError
from repro.workloads.matmul import BlockMatmulApp


def matrices(m=24, k=16, n=12, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((m, k)), rng.standard_normal((k, n))


class TestCorrectness:
    def test_matches_numpy_on_simulator(self):
        app = BlockMatmulApp(blocks=4)
        ab = matrices()
        result = run(app.skeleton, ab, SimulatedPlatform(parallelism=3))
        np.testing.assert_allclose(result, app.reference(ab))

    def test_matches_numpy_on_threads(self):
        app = BlockMatmulApp(blocks=4)
        ab = matrices(seed=1)
        with ThreadPoolPlatform(parallelism=4) as pool:
            result = run(app.skeleton, ab, pool)
        np.testing.assert_allclose(result, app.reference(ab))

    def test_more_blocks_than_rows(self):
        app = BlockMatmulApp(blocks=64)
        ab = matrices(m=5)
        result = run(app.skeleton, ab, SimulatedPlatform())
        np.testing.assert_allclose(result, app.reference(ab))

    def test_single_block(self):
        app = BlockMatmulApp(blocks=1)
        ab = matrices(m=3, k=3, n=3)
        result = run(app.skeleton, ab, SimulatedPlatform())
        np.testing.assert_allclose(result, app.reference(ab))


class TestValidation:
    def test_bad_blocks(self):
        with pytest.raises(WorkloadError):
            BlockMatmulApp(blocks=0)

    def test_shape_mismatch_surfaces(self):
        app = BlockMatmulApp()
        bad = (np.ones((3, 4)), np.ones((5, 2)))
        with pytest.raises(MuscleExecutionError) as info:
            run(app.skeleton, bad, SimulatedPlatform())
        assert isinstance(info.value.cause, WorkloadError)

    def test_non_2d_rejected(self):
        app = BlockMatmulApp()
        with pytest.raises(MuscleExecutionError):
            run(app.skeleton, (np.ones(3), np.ones((3, 2))), SimulatedPlatform())


class TestCostModel:
    def test_flop_proportional(self):
        app = BlockMatmulApp(blocks=2)
        model = app.cost_model(per_flop=1e-9)
        slab = np.ones((10, 20))
        b = np.ones((20, 30))
        assert model.duration(app.fe_matmul, (slab, b)) == pytest.approx(
            1e-9 * 2 * 10 * 20 * 30
        )

    def test_virtual_time_scales_with_size(self):
        app = BlockMatmulApp(blocks=2)
        small = matrices(m=8, k=8, n=8)
        large = matrices(m=32, k=32, n=32)
        p1 = SimulatedPlatform(parallelism=1, cost_model=app.cost_model())
        run(app.skeleton, small, p1)
        t_small = p1.now()
        app2 = BlockMatmulApp(blocks=2)
        p2 = SimulatedPlatform(parallelism=1, cost_model=app2.cost_model())
        run(app2.skeleton, large, p2)
        assert p2.now() > t_small * 10
