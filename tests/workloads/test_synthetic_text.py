"""Unit tests for the synthetic tweet corpus generator."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.synthetic_text import (
    TweetCorpusGenerator,
    load_corpus,
    write_corpus,
)


class TestDeterminism:
    def test_same_seed_same_corpus(self):
        a = TweetCorpusGenerator(seed=1).corpus(200)
        b = TweetCorpusGenerator(seed=1).corpus(200)
        assert a == b

    def test_different_seed_differs(self):
        a = TweetCorpusGenerator(seed=1).corpus(200)
        b = TweetCorpusGenerator(seed=2).corpus(200)
        assert a != b

    def test_streaming_matches_materialized(self):
        gen = TweetCorpusGenerator(seed=3)
        assert list(gen.tweets(50)) == gen.corpus(50)


class TestContent:
    def test_count(self):
        assert len(TweetCorpusGenerator().corpus(123)) == 123

    def test_hashtags_and_mentions_present(self):
        corpus = TweetCorpusGenerator(seed=5).corpus(500)
        assert any("#" in t for t in corpus)
        assert any("@" in t for t in corpus)

    def test_zipf_head_dominates(self):
        """The most popular hashtag should appear far more often than the
        median one (heavy-tailed usage)."""
        from collections import Counter

        corpus = TweetCorpusGenerator(seed=7).corpus(3000)
        tags = Counter(
            tok for t in corpus for tok in t.split() if tok.startswith("#")
        )
        counts = sorted(tags.values(), reverse=True)
        assert counts[0] >= 5 * counts[len(counts) // 2]

    def test_no_empty_tweets(self):
        assert all(TweetCorpusGenerator(seed=9).corpus(300))


class TestValidation:
    def test_negative_count_rejected(self):
        with pytest.raises(WorkloadError):
            list(TweetCorpusGenerator().tweets(-1))

    def test_bad_vocab_rejected(self):
        with pytest.raises(WorkloadError):
            TweetCorpusGenerator(n_hashtags=0)

    def test_bad_words_per_tweet(self):
        with pytest.raises(WorkloadError):
            TweetCorpusGenerator(words_per_tweet=0)


class TestFiles:
    def test_write_and_load(self, tmp_path):
        path = tmp_path / "corpus.txt"
        written = write_corpus(path, 100, TweetCorpusGenerator(seed=4))
        assert written > 0
        lines = load_corpus(path)
        assert lines == TweetCorpusGenerator(seed=4).corpus(100)
