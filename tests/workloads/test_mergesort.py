"""Unit tests for the merge-sort D&C workload."""

import random

import pytest

from repro import SimulatedPlatform, run
from repro.errors import WorkloadError
from repro.skeletons import sequential_evaluate
from repro.workloads.mergesort import MergesortApp, merge_sorted


class TestMergeSorted:
    def test_two_way(self):
        assert merge_sorted([[1, 3], [2, 4]]) == [1, 2, 3, 4]

    def test_k_way(self):
        assert merge_sorted([[1], [0, 5], [2, 3]]) == [0, 1, 2, 3, 5]

    def test_empty_parts(self):
        assert merge_sorted([[], [1]]) == [1]


class TestApp:
    def test_sorts_correctly(self):
        app = MergesortApp(threshold=8)
        data = random.Random(1).sample(range(10_000), 200)
        platform = SimulatedPlatform(parallelism=4)
        assert run(app.skeleton, data, platform) == sorted(data)

    def test_matches_reference_semantics(self):
        app = MergesortApp(threshold=4)
        data = random.Random(2).sample(range(1000), 37)
        assert sequential_evaluate(app.skeleton, data) == sorted(data)

    def test_small_input_is_leaf(self):
        app = MergesortApp(threshold=100)
        data = [3, 1, 2]
        platform = SimulatedPlatform()
        assert run(app.skeleton, data, platform) == [1, 2, 3]

    def test_duplicates_preserved(self):
        app = MergesortApp(threshold=2)
        data = [5, 1, 5, 1, 5]
        platform = SimulatedPlatform()
        assert run(app.skeleton, data, platform) == [1, 1, 5, 5, 5]

    def test_threshold_validated(self):
        with pytest.raises(WorkloadError):
            MergesortApp(threshold=0)

    def test_cost_model_positive(self):
        app = MergesortApp(threshold=8)
        model = app.cost_model()
        assert model.duration(app.fe_sort, list(range(50))) > 0
        assert model.duration(app.fm_merge, [[1, 2], [3]]) > 0
        assert model.duration(app.fc_divide, [1]) > 0
