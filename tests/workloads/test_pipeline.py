"""Unit tests for the staged text pipeline workload."""

from collections import Counter

from repro import SimulatedPlatform, run
from repro.skeletons import sequential_evaluate
from repro.workloads.pipeline import TextPipelineApp
from repro.workloads.synthetic_text import TweetCorpusGenerator


class TestStages:
    def test_normalize(self):
        assert TextPipelineApp._normalize(["  HoLa  ", "#A"]) == ["hola", "#a"]

    def test_extract(self):
        counts = TextPipelineApp._extract(["#a @b c", "#a d"])
        assert counts == Counter({"#a": 2, "@b": 1})

    def test_score_top10(self):
        counts = Counter({f"#t{i}": i for i in range(20)})
        top = TextPipelineApp._score(counts)
        assert len(top) == 10
        assert top[0][1] == 19


class TestPipeline:
    def test_end_to_end(self):
        app = TextPipelineApp()
        corpus = TweetCorpusGenerator(seed=21).corpus(200)
        result = run(app.skeleton, corpus, SimulatedPlatform(parallelism=2))
        assert result == sequential_evaluate(app.skeleton, corpus)
        assert all(term.startswith(("#", "@")) for term, _n in result)

    def test_farmed_streaming(self):
        app = TextPipelineApp()
        farm = app.farmed()
        platform = SimulatedPlatform(parallelism=3, cost_model=app.cost_model())
        chunks = [
            TweetCorpusGenerator(seed=s).corpus(50) for s in (1, 2, 3)
        ]
        futures = [farm.input(chunk, platform=platform) for chunk in chunks]
        results = [f.get() for f in futures]
        assert results == [sequential_evaluate(app.skeleton, c) for c in chunks]
