"""Unit tests for the paper's Twitter-count application."""

from collections import Counter

import pytest

from repro import SimulatedPlatform, ThreadPoolPlatform, run
from repro.errors import WorkloadError
from repro.workloads.synthetic_text import TweetCorpusGenerator
from repro.workloads.wordcount import (
    PAPER_COSTS,
    TwitterCountApp,
    count_terms,
    merge_counts,
    split_into,
)


class TestMuscles:
    def test_count_terms(self):
        counts = count_terms(["hola #a @u", "#a otra vez", "nada"])
        assert counts == Counter({"#a": 2, "@u": 1})

    def test_split_into_covers_everything(self):
        chunks = split_into(3)(list(range(10)))
        assert sorted(x for c in chunks for x in c) == list(range(10))

    def test_split_into_small_input(self):
        chunks = split_into(5)([1, 2])
        assert all(chunks)
        assert sorted(x for c in chunks for x in c) == [1, 2]

    def test_split_rejects_bad_n(self):
        with pytest.raises(WorkloadError):
            split_into(0)

    def test_merge_counts(self):
        total = merge_counts([Counter({"#a": 1}), Counter({"#a": 2, "@b": 1})])
        assert total == Counter({"#a": 3, "@b": 1})


class TestApp:
    def test_functional_correctness_sim(self):
        corpus = TweetCorpusGenerator(seed=11).corpus(500)
        app = TwitterCountApp()
        platform = SimulatedPlatform(parallelism=4, cost_model=app.cost_model())
        result = run(app.skeleton, corpus, platform)
        assert result == app.reference_count(corpus)

    def test_functional_correctness_threads(self):
        corpus = TweetCorpusGenerator(seed=12).corpus(300)
        app = TwitterCountApp()
        with ThreadPoolPlatform(parallelism=4) as platform:
            result = run(app.skeleton, corpus, platform)
        assert result == app.reference_count(corpus)

    def test_sequential_wct_matches_simulation(self):
        corpus = TweetCorpusGenerator(seed=13).corpus(200)
        app = TwitterCountApp()
        platform = SimulatedPlatform(parallelism=1, cost_model=app.cost_model())
        run(app.skeleton, corpus, platform)
        assert platform.now() == pytest.approx(app.sequential_wct())

    def test_sequential_wct_near_paper(self):
        """The calibrated cost structure lands near the paper's 12.5 s."""
        assert TwitterCountApp().sequential_wct() == pytest.approx(12.61, abs=0.2)

    def test_first_branch_prefix_near_7_6(self):
        """First split + one inner split + its executes + one merge ≈ 7.6 s
        — the paper's first-analysis instant."""
        prefix = (
            PAPER_COSTS["first_split"]
            + PAPER_COSTS["second_split"]
            + PAPER_COSTS["inner_chunks"] * PAPER_COSTS["execute"]
            + PAPER_COSTS["merge"]
        )
        assert prefix == pytest.approx(7.63, abs=0.1)

    def test_skeleton_shape(self):
        app = TwitterCountApp()
        assert app.skeleton.pretty() == "map(fs, map(fs, seq(fe), fm), fm)"
