"""Unit tests for QoS goals."""

import pytest

from repro.core.qos import MaxLPGoal, QoS, WCTGoal
from repro.errors import QoSError


class TestWCTGoal:
    def test_deadline(self):
        assert WCTGoal(10.0).deadline(5.0) == 15.0

    def test_margin_shrinks_planning_goal(self):
        goal = WCTGoal(10.0, margin=0.2)
        assert goal.effective_seconds == pytest.approx(8.0)
        assert goal.deadline(0.0) == pytest.approx(8.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(QoSError):
            WCTGoal(0.0)

    def test_rejects_bad_margin(self):
        with pytest.raises(QoSError):
            WCTGoal(1.0, margin=1.0)
        with pytest.raises(QoSError):
            WCTGoal(1.0, margin=-0.1)


class TestMaxLP:
    def test_valid(self):
        assert MaxLPGoal(4).threads == 4

    def test_rejects_zero(self):
        with pytest.raises(QoSError):
            MaxLPGoal(0)


class TestQoS:
    def test_needs_at_least_one_goal(self):
        with pytest.raises(QoSError):
            QoS()

    def test_wall_clock_helper(self):
        qos = QoS.wall_clock(9.5, max_lp=24)
        assert qos.wct.seconds == 9.5
        assert qos.max_threads == 24

    def test_wall_clock_without_max(self):
        qos = QoS.wall_clock(9.5)
        assert qos.max_threads is None

    def test_max_lp_only(self):
        qos = QoS(max_lp=MaxLPGoal(8))
        assert qos.wct is None
        assert qos.max_threads == 8


class TestSchedulingClasses:
    """Weight and priority — the service's QoS class attributes."""

    def test_defaults(self):
        from repro import Priority

        qos = QoS.wall_clock(5.0)
        assert qos.weight is None  # inherit the tenant quota weight
        assert qos.priority == Priority.NORMAL

    def test_best_effort_constructor(self):
        from repro import Priority

        qos = QoS.best_effort(weight=2.5, priority=Priority.HIGH)
        assert qos.wct is None and qos.max_lp is None
        assert qos.weight == 2.5
        assert qos.priority is Priority.HIGH

    def test_weight_must_be_positive(self):
        with pytest.raises(QoSError):
            QoS(weight=0.0)
        with pytest.raises(QoSError):
            QoS.wall_clock(5.0, weight=-1.0)

    def test_all_defaults_rejected(self):
        with pytest.raises(QoSError):
            QoS()
        # best_effort() points the caller at qos=None instead of the
        # generic empty-spec error.
        with pytest.raises(QoSError, match="qos=None"):
            QoS.best_effort()

    def test_priority_alone_is_a_valid_spec(self):
        from repro import Priority

        qos = QoS.best_effort(priority=Priority.BATCH)
        assert qos.priority is Priority.BATCH

    def test_priority_ordering(self):
        from repro import Priority

        assert Priority.BATCH < Priority.NORMAL < Priority.HIGH < Priority.URGENT
        assert int(Priority.URGENT) == 2

    def test_wall_clock_passes_classes_through(self):
        from repro import Priority

        qos = QoS.wall_clock(9.5, max_lp=4, weight=3.0, priority=Priority.URGENT)
        assert qos.wct.seconds == 9.5
        assert qos.max_threads == 4
        assert qos.weight == 3.0
        assert qos.priority is Priority.URGENT
