"""Unit tests for QoS goals."""

import pytest

from repro.core.qos import MaxLPGoal, QoS, WCTGoal
from repro.errors import QoSError


class TestWCTGoal:
    def test_deadline(self):
        assert WCTGoal(10.0).deadline(5.0) == 15.0

    def test_margin_shrinks_planning_goal(self):
        goal = WCTGoal(10.0, margin=0.2)
        assert goal.effective_seconds == pytest.approx(8.0)
        assert goal.deadline(0.0) == pytest.approx(8.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(QoSError):
            WCTGoal(0.0)

    def test_rejects_bad_margin(self):
        with pytest.raises(QoSError):
            WCTGoal(1.0, margin=1.0)
        with pytest.raises(QoSError):
            WCTGoal(1.0, margin=-0.1)


class TestMaxLP:
    def test_valid(self):
        assert MaxLPGoal(4).threads == 4

    def test_rejects_zero(self):
        with pytest.raises(QoSError):
            MaxLPGoal(0)


class TestQoS:
    def test_needs_at_least_one_goal(self):
        with pytest.raises(QoSError):
            QoS()

    def test_wall_clock_helper(self):
        qos = QoS.wall_clock(9.5, max_lp=24)
        assert qos.wct.seconds == 9.5
        assert qos.max_threads == 24

    def test_wall_clock_without_max(self):
        qos = QoS.wall_clock(9.5)
        assert qos.max_threads is None

    def test_max_lp_only(self):
        qos = QoS(max_lp=MaxLPGoal(8))
        assert qos.wct is None
        assert qos.max_threads == 8
