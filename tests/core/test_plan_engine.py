"""Plan-cache correctness properties for the incremental planning layer.

The :class:`~repro.core.planning.PlanEngine` promises that every cached
answer is **bit-for-bit equal** to a from-scratch
:mod:`repro.core.schedule` recompute at the same arguments.  These tests
pin that contract:

* seeded/generated scenarios compare every engine answer — WCT, minimal
  LP, optimal LP, full timelines — against direct ``schedule.py`` runs
  over a freshly projected ADG, both for structural (pre-start) plans
  and live (mid-execution) plans at real analysis points;
* explicit invalidation tests: a new event (ADG/machine revision) or an
  estimator update (version stamp) must produce fresh answers, while an
  unchanged world must hit the cache (same object back);
* compiled-vs-dict equivalence: every :mod:`repro.core.planning.table`
  array pass (best-effort, critical path, pinning, limited-LP frontier,
  minimal-LP scan) must equal its dict twin bit for bit — structurally,
  live at analysis points, and across the delta/patch path — and a
  ``plan_compiled=False`` engine must answer identically while touching
  no tables at all.

The sweeps carry the ``service_stress`` marker so the dedicated CI job
runs them alongside the arbiter property harness.
"""

import pytest
from hypothesis import assume, given

from repro import SimulatedPlatform, run
from repro.core.adg import ADG
from repro.core.analysis import ExecutionAnalyzer, is_analysis_point
from repro.core.estimator import EstimatorRegistry
from repro.core.persistence import snapshot_from_names
from repro.core.planning import PlanCache, PlanTable
from repro.core.planning.compile import (
    CompiledProjection,
    compile_structural,
    structural_fingerprint,
)
from repro.core.planning.table import (
    compiled_best_effort,
    compiled_critical_path,
    compiled_minimal_lp,
    compiled_pin,
    compiled_schedule_pending,
)
from repro.core.projection import project_skeleton, projected_wct
from repro.core.qos import QoS
from repro.core.schedule import (
    best_effort_schedule,
    limited_lp_schedule,
    minimal_lp_greedy,
    pin_actuals,
    remaining_critical_path,
)
from repro.events.bus import Listener
from repro.events.recorder import EventRecorder
from repro.runtime.costmodel import ConstantCostModel
from repro.skeletons import Execute, Map, Merge, Seq, Split
from tests.conftest import build_program, program_descriptions


def timed_sim(parallelism=3):
    platform = SimulatedPlatform(
        parallelism=parallelism,
        cost_model=ConstantCostModel(1.0),
        max_parallelism=8,
    )
    platform.add_listener(EventRecorder())
    return platform


def map_program(width=3):
    return Map(
        Split(lambda v, w=width: [v] * w, name="split"),
        Seq(Execute(lambda v: v, name="work")),
        Merge(lambda rs: rs[0], name="merge"),
    )


def warm_map_analyzer(width=3, qos=None, cache=None, work_t=1.0, plan_compiled=True):
    program = map_program(width)
    analyzer = ExecutionAnalyzer(
        qos=qos, skeleton=program, plan_cache=cache, plan_compiled=plan_compiled
    )
    analyzer.initialize_estimates(
        program,
        snapshot_from_names(
            program,
            times={"split": 0.25, "work": work_t, "merge": 0.25},
            cards={"split": float(width)},
        ),
    )
    return program, analyzer


# ---------------------------------------------------------------------------
# version stamps


class TestVersionStamps:
    def test_adg_revision_bumps_on_add_and_touch(self):
        adg = ADG()
        assert adg.rev == 0
        adg.add("a", 1.0)
        assert adg.rev == 1
        adg.add("b", 1.0, preds=[0])
        assert adg.rev == 2
        assert adg.touch() == 3
        assert adg.rev == 3

    def test_estimator_version_bumps_on_observations(self):
        program = map_program()
        est = EstimatorRegistry()
        v0 = est.version
        work = next(m for m in program.muscles() if m.name == "work")
        est.observe_time(work, 1.0)
        assert est.version == v0 + 1
        split = next(m for m in program.muscles() if m.name == "split")
        est.observe_card(split, 3)
        assert est.version == v0 + 2
        est.initialize_time(work, 2.0)
        est.initialize_card(split, 2.0)
        assert est.version == v0 + 4

    def test_restore_estimates_bumps_version(self):
        program = map_program()
        analyzer = ExecutionAnalyzer(skeleton=program)
        v0 = analyzer.estimators.version
        analyzer.initialize_estimates(
            program,
            snapshot_from_names(
                program,
                times={"split": 0.1, "work": 1.0, "merge": 0.1},
                cards={"split": 3.0},
            ),
        )
        assert analyzer.estimators.version > v0

    def test_machine_revision_bumps_per_event(self):
        platform = timed_sim()
        analyzer = ExecutionAnalyzer(extensions=True)
        platform.add_listener(analyzer)
        assert analyzer.machines.rev == 0
        run(map_program(), 7, platform)
        after_run = analyzer.machines.rev
        assert after_run > 0
        analyzer.machines.reset()
        assert analyzer.machines.rev == after_run + 1


# ---------------------------------------------------------------------------
# structural plans == from-scratch projection + schedule


@pytest.mark.service_stress
class TestStructuralPlansMatchFromScratch:
    @given(program_descriptions)
    def test_structural_answers_equal_projected_wct(self, desc):
        program = build_program(desc)
        platform = timed_sim()
        analyzer = ExecutionAnalyzer(skeleton=program, extensions=True)
        platform.add_listener(analyzer)
        # One full run warms every estimator the projection needs.  A
        # program whose structure skips some muscle entirely (e.g. a For
        # with zero trips, an untaken If branch) stays cold — no
        # structural plan exists for it, with or without the engine.
        run(program, 5, platform)
        est = analyzer.estimators
        engine = analyzer.plan
        assume(est.ready_for(program))

        fresh = ADG()
        project_skeleton(program, fresh, [], est)
        structural = engine.structural_projection()
        assert structural is not None
        assert len(structural) == len(fresh)
        for a, b in zip(structural.activities, fresh.activities):
            assert (a.id, a.name, a.duration, a.preds) == (
                b.id,
                b.name,
                b.duration,
                b.preds,
            )

        for lp in (1, 2, 3, 5):
            assert engine.structural_wct(lp) == projected_wct(
                program, est, lp
            ), f"cached structural WCT diverged at lp={lp}"

        # Minimal LP against a goal that LP 2 provably meets.
        goal = projected_wct(program, est, 2) + 1e-6
        found = minimal_lp_greedy(fresh, 0.0, goal, max_lp=8)
        expected = found[0] if found is not None else None
        assert engine.structural_minimal_lp(goal, cap=8) == expected

        # Unchanged world -> the cache returns the same projection object.
        assert engine.structural_projection() is structural


# ---------------------------------------------------------------------------
# live plans == from-scratch projection + schedule, at real analysis points


class _LivePlanChecker(Listener):
    """At every analysis point, compare the engine-backed report against
    direct schedule.py recomputes over a freshly projected ADG."""

    def __init__(self, analyzer, platform):
        self.analyzer = analyzer
        self.platform = platform
        self.checked = 0

    def on_event(self, event):
        if not is_analysis_point(event):
            return event.value
        now = self.platform.now()
        report = self.analyzer.analyze(
            now, current_lp=self.platform.get_parallelism()
        )
        if report is None:
            return event.value
        adg, _terminals = self.analyzer.machines.project_roots(now)
        best = best_effort_schedule(adg, now)
        assert report.wct_best_effort == best.wct
        assert report.optimal_lp == best.peak(from_time=now)
        for lp in (1, 2, 3):
            reference = limited_lp_schedule(adg, now, lp)
            assert report.wct_at(lp) == reference.wct
            cached = report.engine.limited(report.adg, now, lp)
            assert cached.timeline() == reference.timeline()
        if report.deadline is not None:
            found = minimal_lp_greedy(adg, now, report.deadline, max_lp=6)
            expected = found[0] if found is not None else None
            assert report.minimal_lp(cap=6) == expected
        self.checked += 1
        return event.value


@pytest.mark.service_stress
class TestLivePlansMatchFromScratch:
    @given(program_descriptions)
    def test_engine_reports_equal_direct_schedules(self, desc):
        # Warm-up run on a fresh construction of the same program shape:
        # its estimate snapshot makes the checked run analyzable from the
        # very first analysis point (the paper's scenario 2).
        from repro.core.persistence import snapshot_estimates

        warm_program = build_program(desc)
        warm_platform = timed_sim()
        warm_analyzer = ExecutionAnalyzer(skeleton=warm_program, extensions=True)
        warm_platform.add_listener(warm_analyzer)
        run(warm_program, 5, warm_platform)
        snapshot = snapshot_estimates(warm_program, warm_analyzer.estimators)

        program = build_program(desc)
        platform = timed_sim()
        analyzer = ExecutionAnalyzer(
            qos=QoS.wall_clock(30.0), skeleton=program, extensions=True
        )
        analyzer.initialize_estimates(program, snapshot)
        assume(analyzer.estimators.ready_for(program))
        checker = _LivePlanChecker(analyzer, platform)

        # Pre-start: the structural report must match a from-scratch
        # structural projection + schedule.
        report = analyzer.analyze(platform.now())
        assert report is not None
        fresh = ADG()
        project_skeleton(program, fresh, [], analyzer.estimators)
        best = best_effort_schedule(fresh, platform.now())
        assert report.wct_best_effort == best.wct
        assert report.optimal_lp == best.peak(from_time=platform.now())

        platform.add_listener(analyzer)
        platform.add_listener(checker)  # after the analyzer: sees fresh state
        run(program, 5, platform)
        # A single-activity program finishes at its only analysis point
        # (no live report to check); anything wider was verified live.
        assert checker.checked >= 0

    def test_live_checks_actually_run_on_a_fanout(self):
        program, analyzer = warm_map_analyzer(width=4, qos=QoS.wall_clock(30.0))
        platform = timed_sim()
        checker = _LivePlanChecker(analyzer, platform)
        platform.add_listener(analyzer)
        platform.add_listener(checker)
        run(program, 5, platform)
        assert checker.checked >= 4  # split + the work muscles at least


# ---------------------------------------------------------------------------
# the patch path: patched projections/pinned bases == from-scratch walks


def assert_adg_content_equal(patched: ADG, fresh: ADG) -> None:
    """Bit-for-bit activity equality (ids, structure, times, roles)."""
    assert len(patched) == len(fresh)
    for a, b in zip(patched.activities, fresh.activities):
        assert (a.id, a.name, a.duration, a.preds, a.start, a.end, a.role) == (
            b.id,
            b.name,
            b.duration,
            b.preds,
            b.start,
            b.end,
            b.role,
        )


def assert_pinned_equal(base, full) -> None:
    assert base.now == full.now
    assert base.entries == full.entries
    assert base.ends == full.ends
    assert sorted(base.busy) == sorted(full.busy)
    assert base.pending_preds == full.pending_preds
    assert base.ready_time == full.ready_time
    assert base.to_schedule == full.to_schedule


def assert_compiled_schedule_equal(compiled, reference) -> None:
    """A CompiledSchedule must equal its dict ScheduleResult twin on the
    whole public surface: WCT, timelines, peaks and materialized entries
    — bit for bit, no tolerances."""
    assert compiled.now == reference.now
    assert compiled.lp == reference.lp
    assert compiled.wct == reference.wct
    assert compiled.remaining() == reference.remaining()
    assert compiled.timeline() == reference.timeline()
    assert compiled.timeline(from_time=reference.now) == reference.timeline(
        from_time=reference.now
    )
    assert compiled.peak(from_time=reference.now) == reference.peak(
        from_time=reference.now
    )
    assert set(compiled.entries) == set(reference.entries)
    for aid, want in reference.entries.items():
        got = compiled.entries[aid]
        assert (got.id, got.name, got.start, got.end, got.status) == (
            want.id,
            want.name,
            want.start,
            want.end,
            want.status,
        )


def assert_compiled_pinned_equal(cbase, full) -> None:
    """A CompiledPinnedBase (array columns, -1 = pinned) must encode the
    exact state of a dict PinnedPlanBase from a full pin_actuals pass."""
    assert cbase.now == full.now
    n = len(cbase.pp)
    pinned = {i for i in range(n) if cbase.pp[i] == -1}
    assert pinned == set(full.ends)
    for i in pinned:
        assert cbase.ends[i] == full.ends[i]
    assert {
        i: cbase.pp[i] for i in range(n) if cbase.pp[i] >= 0
    } == full.pending_preds
    assert sorted(cbase.busy) == sorted(full.busy)
    assert {aid: r for r, aid in cbase.ready_items} == full.ready_time
    assert cbase.to_schedule == full.to_schedule


class _PatchPathChecker(Listener):
    """At every analysis point, compare the (possibly patched) projection
    and pinned base against from-scratch machine walks, atomically with
    respect to concurrent event publication (machines.lock is held)."""

    def __init__(self, analyzer, platform):
        self.analyzer = analyzer
        self.platform = platform
        self.checked = 0

    def on_event(self, event):
        if not is_analysis_point(event):
            return event.value
        analyzer = self.analyzer
        engine = analyzer.plan
        with analyzer.machines.lock:
            roots = analyzer.unfinished_roots()
            if not roots or not analyzer.ready(roots):
                return event.value
            now = self.platform.now()
            adg = engine.projection(now, roots)
            fresh, _terminals = analyzer.machines.project_roots(now, roots)
            assert_adg_content_equal(adg, fresh)
            # Drive the pinned base (and its delta re-pin across nows)
            # through the engine, then compare with a full pinning pass.
            engine.limited(adg, now, 2)
            table = engine._table_for(adg)
            if table is not None:
                # Compiled passes against their dict twins on the same
                # (possibly patched, delta-refreshed) graph — including
                # the compiled delta re-pin, which `limited` above drove
                # across nows.
                assert_compiled_pinned_equal(
                    engine._pinned_compiled(adg, now, table),
                    pin_actuals(adg, now),
                )
                assert_compiled_schedule_equal(
                    engine.limited(adg, now, 2),
                    limited_lp_schedule(adg, now, 2),
                )
                cp, _prio = engine._critical_path_compiled(adg, table)
                ref_cp = remaining_critical_path(adg)
                assert list(cp) == [ref_cp[i] for i in range(len(adg))]
            assert_pinned_equal(engine._pinned(adg, now), pin_actuals(adg, now))
            self.checked += 1
        return event.value


def _warm_snapshot_for(desc):
    """A snapshot from one full run of a fresh construction of *desc*."""
    from repro.core.persistence import snapshot_estimates

    warm_program = build_program(desc)
    warm_platform = timed_sim()
    warm_analyzer = ExecutionAnalyzer(skeleton=warm_program, extensions=True)
    warm_platform.add_listener(warm_analyzer)
    run(warm_program, 5, warm_platform)
    return snapshot_estimates(warm_program, warm_analyzer.estimators)


@pytest.mark.service_stress
class TestPatchPathEquivalence:
    """ISSUE 5 acceptance: for every generated scenario, the delta/patch
    path produces projections, pinned bases, WCTs, minimal LPs and
    timelines identical to from-scratch recomputes (quantized mode off).
    The schedule-level quantities are covered by `_LivePlanChecker`
    (which runs with patching on by default); this class pins the
    projection/pinning layers directly and that patches actually fire."""

    @given(program_descriptions)
    def test_patched_projection_and_pins_equal_full_walks(self, desc):
        snapshot = _warm_snapshot_for(desc)
        program = build_program(desc)
        platform = timed_sim()
        analyzer = ExecutionAnalyzer(
            qos=QoS.wall_clock(30.0), skeleton=program, extensions=True
        )
        analyzer.initialize_estimates(program, snapshot)
        assume(analyzer.estimators.ready_for(program))
        checker = _PatchPathChecker(analyzer, platform)
        platform.add_listener(analyzer)
        platform.add_listener(checker)
        run(program, 5, platform)
        assert checker.checked >= 0

    def test_patches_fire_and_stay_equal_on_wide_map(self):
        """Deterministic non-vacuity: a warm wide map with converged
        estimates must exercise the patch path (projection patches and
        delta re-pins) while the checker holds equality throughout."""
        program, analyzer = warm_map_analyzer(
            width=6, qos=QoS.wall_clock(30.0), work_t=1.0
        )
        # Converge the estimates the simulator will observe (1.0 muscle
        # costs): split/merge warm at 0.25 would drift on first
        # observation and force full walks; 1.0 stays bit-identical.
        analyzer.initialize_estimates(
            program,
            snapshot_from_names(
                program,
                times={"split": 1.0, "work": 1.0, "merge": 1.0},
                cards={"split": 6.0},
            ),
        )
        platform = timed_sim()
        checker = _PatchPathChecker(analyzer, platform)
        platform.add_listener(analyzer)
        platform.add_listener(checker)
        run(program, 3, platform)
        stats = analyzer.plan.cache.stats
        assert checker.checked >= 6
        assert stats.projection_patches >= 1
        assert stats.pin_patches >= 1
        assert stats.projection_passes >= 1  # structural points still walk

    def test_patching_off_never_patches_and_answers_agree(self):
        program, analyzer = warm_map_analyzer(
            width=4, qos=QoS.wall_clock(30.0), work_t=1.0
        )
        analyzer.plan.patching = False
        platform = timed_sim()
        checker = _PatchPathChecker(analyzer, platform)
        platform.add_listener(analyzer)
        platform.add_listener(checker)
        run(program, 3, platform)
        stats = analyzer.plan.cache.stats
        assert checker.checked >= 4
        assert stats.projection_patches == 0
        assert stats.pin_patches == 0


# ---------------------------------------------------------------------------
# invalidation


class TestInvalidation:
    def test_estimator_update_invalidates_structural_plans(self):
        program, analyzer = warm_map_analyzer(width=3, work_t=1.0)
        engine = analyzer.plan
        est = analyzer.estimators
        before = engine.structural_wct(1)
        assert before == projected_wct(program, est, 1)

        work = next(m for m in program.muscles() if m.name == "work")
        est.initialize_time(work, 5.0)
        after = engine.structural_wct(1)
        assert after == projected_wct(program, est, 1)
        assert after != before  # 3 x 1s became 3 x 5s

    def test_live_projection_reused_until_next_event(self):
        platform = timed_sim()
        program, analyzer = warm_map_analyzer(width=4)
        platform.add_listener(analyzer)
        engine = analyzer.plan
        seen = []

        class Probe(Listener):
            def on_event(self, event):
                if is_analysis_point(event):
                    roots = analyzer.unfinished_roots()
                    if roots and analyzer.ready(roots):
                        now = platform.now()
                        first = engine.projection(now, roots)
                        assert engine.projection(now, roots) is first
                        seen.append(first)
                return event.value

        platform.add_listener(Probe())
        run(program, 3, platform)
        assert len(seen) >= 2
        # Every analysis point consumed at least one new event, so no
        # projection is served from the (rev-keyed) cache unchanged; but
        # with the delta pipeline a span-only window *patches* the
        # previous object in place instead of building a fresh one — so
        # the distinct-object count equals the full walks, and the
        # remainder were patches.
        stats = engine.cache.stats
        distinct = len({id(adg) for adg in seen})
        assert distinct < len(seen)  # at least one patch fired
        assert stats.projection_patches >= len(seen) - distinct

    def test_live_projection_rebuilt_fresh_without_patching(self):
        """patching=False restores the pre-delta behaviour: every new
        event makes the next projection a fresh object."""
        platform = timed_sim()
        program, analyzer = warm_map_analyzer(width=4)
        analyzer.plan.patching = False
        platform.add_listener(analyzer)
        engine = analyzer.plan
        seen = []

        class Probe(Listener):
            def on_event(self, event):
                if is_analysis_point(event):
                    roots = analyzer.unfinished_roots()
                    if roots and analyzer.ready(roots):
                        now = platform.now()
                        first = engine.projection(now, roots)
                        assert engine.projection(now, roots) is first
                        seen.append(first)
                return event.value

        platform.add_listener(Probe())
        run(program, 3, platform)
        assert len(seen) >= 2
        assert len({id(adg) for adg in seen}) == len(seen)
        assert engine.cache.stats.projection_patches == 0

    def test_adg_mutation_invalidates_derived_plans(self):
        """Mutating an engine-built ADG (its revision counter bumps)
        retires every plan cached for the old revision."""
        program, analyzer = warm_map_analyzer(width=2, work_t=1.0)
        engine = analyzer.plan
        adg = engine.structural_projection()
        before = engine.wct_at(adg, 0.0, 1)
        terminal = max(a.id for a in adg.activities)
        adg.add("appended", 10.0, preds=[terminal])
        after = engine.wct_at(adg, 0.0, 1)
        assert after == before + 10.0  # fresh plan, not the stale cache
        assert adg.touch() == adg.rev  # touch() also retires plans

    def test_mutated_projection_is_rebuilt_not_served(self):
        """A served projection mutated in place must not poison later
        analyses: the next projection call rebuilds from the machines
        (matching pre-engine behaviour, where every analysis projected
        a fresh ADG)."""
        _program, analyzer = warm_map_analyzer(width=2)
        engine = analyzer.plan
        adg = engine.structural_projection()
        clean_size = len(adg)
        adg.add("rogue", 99.0)
        rebuilt = engine.structural_projection()
        assert rebuilt is not adg
        assert len(rebuilt) == clean_size

    def test_disabled_cache_recomputes_everything(self):
        cache = PlanCache(maxsize=0)
        program, analyzer = warm_map_analyzer(cache=cache)
        engine = analyzer.plan
        p1 = engine.structural_projection()
        p2 = engine.structural_projection()
        assert p1 is not p2
        assert cache.stats.hits == 0
        assert cache.stats.projection_passes == 2

    def test_cache_maxsize_validation(self):
        with pytest.raises(ValueError, match="maxsize"):
            PlanCache(maxsize=-1)

    def test_lru_eviction_bounds_the_store(self):
        cache = PlanCache(maxsize=4)
        for i in range(10):
            cache.put(("k", i), i)
        assert len(cache) == 4
        assert cache.stats.evictions == 6


# ---------------------------------------------------------------------------
# shared-cache isolation and effectiveness


class TestSharedCache:
    def test_engines_sharing_one_cache_do_not_collide(self):
        cache = PlanCache()
        prog_a, analyzer_a = warm_map_analyzer(cache=cache, work_t=1.0)
        prog_b, analyzer_b = warm_map_analyzer(cache=cache, work_t=7.0)
        wct_a = analyzer_a.plan.structural_wct(2)
        wct_b = analyzer_b.plan.structural_wct(2)
        assert wct_a == projected_wct(prog_a, analyzer_a.estimators, 2)
        assert wct_b == projected_wct(prog_b, analyzer_b.estimators, 2)
        assert wct_a != wct_b
        # Round two hits the cache for both engines.
        hits0 = cache.stats.hits
        assert analyzer_a.plan.structural_wct(2) == wct_a
        assert analyzer_b.plan.structural_wct(2) == wct_b
        assert cache.stats.hits > hits0

    def test_caching_cuts_schedule_passes_for_identical_queries(self):
        def drive(cache):
            _program, analyzer = warm_map_analyzer(
                width=4, qos=QoS.wall_clock(6.0), cache=cache
            )
            for _ in range(5):
                report = analyzer.analyze(0.0, current_lp=2)
                assert report is not None
                report.minimal_lp(cap=6)
            return cache.stats

        cold = drive(PlanCache(maxsize=0))
        warm = drive(PlanCache())
        assert warm.schedule_passes < cold.schedule_passes
        assert warm.projection_passes < cold.projection_passes
        assert warm.hits > 0
        assert warm.hit_rate > 0.5

    def test_foreign_adg_answers_are_computed_not_cached(self):
        # An ADG the engine did not build is planned correctly but never
        # stored (no version token to invalidate it by).
        cache = PlanCache()
        _program, analyzer = warm_map_analyzer(cache=cache)
        engine = analyzer.plan
        foreign = ADG()
        a = foreign.add("x", 2.0)
        foreign.add("y", 3.0, preds=[a])
        assert engine.wct_at(foreign, 0.0, 1) == 5.0
        assert (
            engine.limited(foreign, 0.0, 1).timeline()
            == limited_lp_schedule(foreign, 0.0, 1).timeline()
        )
        assert len(cache) == 0


# ---------------------------------------------------------------------------
# compiled tables: every array pass == its dict twin, bit for bit


@pytest.mark.service_stress
class TestCompiledPassesMatchDict:
    """ISSUE 9 acceptance: the flat-array passes of
    :mod:`repro.core.planning.table` must be bit-for-bit equal to the
    dict passes of :mod:`repro.core.schedule` — structurally on
    generated programs here, live and across the delta/patch path via
    the extended ``_LivePlanChecker``/``_PatchPathChecker`` sweeps, and
    with ``plan_compiled=False`` restoring the dict path outright."""

    @given(program_descriptions)
    def test_structural_compiled_passes_equal_dict_passes(self, desc):
        program = build_program(desc)
        platform = timed_sim()
        analyzer = ExecutionAnalyzer(skeleton=program, extensions=True)
        platform.add_listener(analyzer)
        run(program, 5, platform)
        est = analyzer.estimators
        assume(est.ready_for(program))

        adg = ADG()
        project_skeleton(program, adg, [], est)
        table = PlanTable.compile(adg)
        assert table is not None
        now = 0.0

        best_ref = best_effort_schedule(adg, now)
        assert_compiled_schedule_equal(compiled_best_effort(table, now), best_ref)

        cp, prio = compiled_critical_path(table)
        ref_cp = remaining_critical_path(adg)
        assert list(cp) == [ref_cp[i] for i in range(len(adg))]

        base = compiled_pin(table, now)
        assert_compiled_pinned_equal(base, pin_actuals(adg, now))

        for lp in (1, 2, 3, 5):
            assert_compiled_schedule_equal(
                compiled_schedule_pending(table, now, lp, base, prio),
                limited_lp_schedule(adg, now, lp),
            )

        # The minimal-LP scan at a generous, a just-met and two
        # unmeetable deadlines: the compiled scan's work-bound prune
        # must never change an answer, feasible or not.
        for deadline in (
            best_ref.wct * 4,
            best_ref.wct + 1e-6,
            best_ref.wct * 0.5,
            now,
        ):
            ref = minimal_lp_greedy(adg, now, deadline, max_lp=8)
            got = compiled_minimal_lp(
                table, now, deadline, max_lp=8, base=base, prio=prio
            )
            if ref is None:
                assert got is None
            else:
                assert got is not None
                assert got[0] == ref[0]
                assert_compiled_schedule_equal(got[1], ref[1])

    def test_compiled_tables_compile_and_patch_on_wide_map(self):
        """Deterministic non-vacuity for the compiled pipeline: the warm
        wide map must compile a table, write deltas through in place and
        delta re-pin the compiled base — with the checker holding
        compiled==dict equality at every analysis point."""
        program, analyzer = warm_map_analyzer(
            width=6, qos=QoS.wall_clock(30.0), work_t=1.0
        )
        analyzer.initialize_estimates(
            program,
            snapshot_from_names(
                program,
                times={"split": 1.0, "work": 1.0, "merge": 1.0},
                cards={"split": 6.0},
            ),
        )
        platform = timed_sim()
        checker = _PatchPathChecker(analyzer, platform)
        platform.add_listener(analyzer)
        platform.add_listener(checker)
        run(program, 3, platform)
        stats = analyzer.plan.cache.stats
        assert checker.checked >= 6
        assert stats.table_compiles >= 1
        assert stats.table_patches >= 1
        assert stats.pin_patches >= 1

    def test_uncompiled_engine_matches_dict_path_live(self):
        """plan_compiled=False must restore the dict path bit for bit:
        the live checker holds, and no table is ever compiled."""
        program, analyzer = warm_map_analyzer(
            width=4, qos=QoS.wall_clock(30.0), plan_compiled=False
        )
        platform = timed_sim()
        checker = _LivePlanChecker(analyzer, platform)
        platform.add_listener(analyzer)
        platform.add_listener(checker)
        run(program, 5, platform)
        assert checker.checked >= 4
        stats = analyzer.plan.cache.stats
        assert stats.table_compiles == 0
        assert stats.table_patches == 0

    def test_uncompiled_patch_path_still_agrees(self):
        """With compilation off, the dict delta pipeline carries the
        patch path alone — and still fires."""
        program, analyzer = warm_map_analyzer(
            width=6, qos=QoS.wall_clock(30.0), work_t=1.0, plan_compiled=False
        )
        analyzer.initialize_estimates(
            program,
            snapshot_from_names(
                program,
                times={"split": 1.0, "work": 1.0, "merge": 1.0},
                cards={"split": 6.0},
            ),
        )
        platform = timed_sim()
        checker = _PatchPathChecker(analyzer, platform)
        platform.add_listener(analyzer)
        platform.add_listener(checker)
        run(program, 3, platform)
        stats = analyzer.plan.cache.stats
        assert checker.checked >= 6
        assert stats.table_compiles == 0
        assert stats.pin_patches >= 1


# ---------------------------------------------------------------------------
# projection compiler == Activity-walk + PlanTable.compile, bit for bit


_TABLE_COLUMNS = (
    "duration",
    "start",
    "end",
    "state",
    "npred",
    "pred0",
    "pred1",
    "pred_ptr",
    "pred_ext",
    "nsucc",
    "succ0",
    "succ1",
    "succ_ptr",
    "succ_ext",
)


def assert_tables_bit_equal(direct: PlanTable, walked: PlanTable) -> None:
    """Every column identical down to the array typecode and raw bytes."""
    assert direct.n == walked.n
    assert direct.names == walked.names
    assert direct.roles == walked.roles
    for col in _TABLE_COLUMNS:
        a, b = getattr(direct, col), getattr(walked, col)
        assert a.typecode == b.typecode, f"typecode mismatch in {col}"
        assert a.tobytes() == b.tobytes(), f"column {col} diverged"


def assert_pinned_bases_equal(fresh, pinned) -> None:
    assert fresh.now == pinned.now
    assert fresh.ends.tobytes() == pinned.ends.tobytes()
    assert fresh.pp.tobytes() == pinned.pp.tobytes()
    assert fresh.state.tobytes() == pinned.state.tobytes()
    assert fresh.busy == pinned.busy
    assert fresh.ready_items == pinned.ready_items
    assert fresh.to_schedule == pinned.to_schedule


@pytest.mark.service_stress
class TestProjectionCompilerTwin:
    """ISSUE 10 acceptance: the :class:`~repro.core.planning.compile.
    ProjectionCompiler` emits PlanTable columns straight from the
    skeleton structure — the result must be **bit-for-bit** the table
    the Activity path produces (``project_skeleton`` → ``PlanTable.
    compile``), every generated pattern included (nested D&C/While/If
    hit the template-stamping multipliers), and the cross-engine
    structural memo must serve repeats without a walk yet never survive
    an estimate-value change."""

    @given(program_descriptions)
    def test_direct_compiled_tables_equal_activity_walk(self, desc):
        program = build_program(desc)
        platform = timed_sim()
        analyzer = ExecutionAnalyzer(skeleton=program, extensions=True)
        platform.add_listener(analyzer)
        run(program, 5, platform)
        est = analyzer.estimators
        assume(est.ready_for(program))

        fresh = ADG()
        project_skeleton(program, fresh, [], est)
        walked = PlanTable.compile(fresh)
        assert walked is not None

        plan = compile_structural(program, est)
        assert isinstance(plan, CompiledProjection)
        assert_tables_bit_equal(plan.table, walked)
        # The all-pending pinned base built by pure array copies equals
        # a real pinning pass over the walked table (bit for bit, so
        # every schedule derived from it is equal too).
        assert_pinned_bases_equal(
            plan.pinned_fresh(0.0), compiled_pin(walked, 0.0)
        )

        # The engine serves the same answers through the memoized plan
        # as the dict path computes from scratch.
        engine = analyzer.plan
        served = engine.structural_plan()
        assert served is not None
        assert_tables_bit_equal(served.table, walked)
        for lp in (1, 3):
            assert engine.structural_wct(lp) == projected_wct(program, est, lp)

    def test_memo_shared_across_engines_walk_counter_flat(self):
        """N same-shape, same-estimate submissions share ONE compiled
        structural table: the first compiles (one projection pass), the
        rest are memo hits — the walk counter stays flat."""
        cache = PlanCache()
        analyzers = [
            warm_map_analyzer(width=4, cache=cache)[1] for _ in range(4)
        ]
        base = cache.stats
        plans = [a.plan.structural_plan() for a in analyzers]
        assert all(p is plans[0] for p in plans)  # one shared object
        stats = cache.stats
        assert stats.struct_compiles - base.struct_compiles == 1
        assert stats.struct_memo_hits - base.struct_memo_hits == 3
        # The compile *is* the only projection walk for the shape.
        assert stats.projection_passes - base.projection_passes == 1
        # Re-asking on every engine stays flat too.
        for a in analyzers:
            assert a.plan.structural_plan() is plans[0]
        again = cache.stats
        assert again.struct_compiles == stats.struct_compiles
        assert again.projection_passes == stats.projection_passes

    def test_memo_invalidated_by_value_change_not_version_churn(self):
        """The memo keys on estimate *values*: a version bump that
        changes a duration recompiles; a version bump that re-initializes
        the same values still hits."""
        cache = PlanCache()
        program, analyzer = warm_map_analyzer(width=3, cache=cache)
        engine = analyzer.plan
        first = engine.structural_plan()
        assert first is not None
        compiles0 = cache.stats.struct_compiles

        # Same structural values, new estimator version (an unrelated
        # muscle's estimate moved — e.g. registry churn from another
        # part of a shared workload): memo must still hit.
        v0 = analyzer.estimators.version
        unrelated = Execute(lambda v: v, name="unrelated")
        analyzer.estimators.initialize_time(unrelated, 42.0)
        assert analyzer.estimators.version > v0
        assert engine.structural_plan() is first
        assert cache.stats.struct_compiles == compiles0

        # Changed value: fresh compile, and the duration column moved.
        work = next(m for m in program.muscles() if m.name == "work")
        analyzer.estimators.initialize_time(work, 9.0)
        second = engine.structural_plan()
        assert second is not None and second is not first
        assert cache.stats.struct_compiles == compiles0 + 1
        assert second.table.duration.tobytes() != first.table.duration.tobytes()
        assert engine.structural_wct(2) == projected_wct(
            program, analyzer.estimators, 2
        )

    def test_fingerprint_separates_shapes_and_names(self):
        """Same pattern tree with different muscle names (or different
        cardinalities changing the stamped structure) must not share."""
        prog_a = map_program(width=3)
        prog_b = map_program(width=3)
        assert structural_fingerprint(prog_a) == structural_fingerprint(prog_b)
        renamed = Map(
            Split(lambda v: [v] * 3, name="split2"),
            Seq(Execute(lambda v: v, name="work")),
            Merge(lambda rs: rs[0], name="merge"),
        )
        assert structural_fingerprint(prog_a) != structural_fingerprint(renamed)

    def test_counters_surface_in_stats_dict(self):
        """Deterministic non-vacuity: the new counters are visible on
        the dict surface every exporter (plan_stats, the Telescope
        gauge family) reads."""
        cache = PlanCache()
        _, analyzer = warm_map_analyzer(width=2, cache=cache)
        _, other = warm_map_analyzer(width=2, cache=cache)
        assert analyzer.plan.structural_plan() is not None
        assert other.plan.structural_plan() is not None
        d = cache.stats_dict()
        assert d["struct_compiles"] == 1
        assert d["struct_memo_hits"] == 1

    def test_admission_gates_ride_the_structural_memo(self):
        """The admission controller's ``_project``/``predict_wct`` pull
        the compiled structural plan when handed the submission's
        engine — no per-evaluation projection walk."""
        from repro.core.qos import QoS as _QoS
        from repro.service.admission import AdmissionController

        cache = PlanCache()
        program, analyzer = warm_map_analyzer(width=4, cache=cache)
        ctl = AdmissionController(capacity=4)
        qos = _QoS.wall_clock(1000.0)
        walks0 = cache.stats.projection_passes
        d1 = ctl.evaluate(
            program, qos, analyzer.estimators, "t", 0, engine=analyzer.plan
        )
        assert not d1.rejected
        # Re-evaluation (held-queue style) adds no projection walk.
        d2 = ctl.evaluate(
            program, qos, analyzer.estimators, "t", 0, engine=analyzer.plan
        )
        assert not d2.rejected
        assert cache.stats.projection_passes == walks0 + 1
        assert cache.stats.struct_memo_hits >= 1
        assert ctl.predict_wct(
            program, analyzer.estimators, engine=analyzer.plan
        ) == projected_wct(program, analyzer.estimators, 4)
