"""Unit + property tests for the history estimators (paper formula)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.estimator import EstimatorRegistry, HistoryEstimator
from repro.errors import EstimateNotReadyError, QoSError
from repro.skeletons import (
    DivideAndConquer,
    Execute,
    For,
    Map,
    Merge,
    Seq,
    Split,
    While,
)


class TestHistoryEstimator:
    def test_not_ready_initially(self):
        est = HistoryEstimator()
        assert not est.ready
        with pytest.raises(EstimateNotReadyError):
            _ = est.value

    def test_first_observation_becomes_estimate(self):
        est = HistoryEstimator(rho=0.5)
        est.update(8.0)
        assert est.value == 8.0

    def test_paper_formula(self):
        est = HistoryEstimator(rho=0.5)
        est.update(10.0)
        est.update(20.0)
        # new = 0.5*20 + 0.5*10
        assert est.value == pytest.approx(15.0)

    def test_rho_one_tracks_last(self):
        est = HistoryEstimator(rho=1.0)
        for v in (3.0, 9.0, 1.0):
            est.update(v)
        assert est.value == 1.0

    def test_rho_zero_keeps_first(self):
        est = HistoryEstimator(rho=0.0)
        est.update(5.0)
        est.update(100.0)
        est.update(200.0)
        assert est.value == 5.0

    def test_initialize_warm_start(self):
        est = HistoryEstimator(rho=0.5)
        est.initialize(4.0)
        assert est.ready and est.initialized
        est.update(8.0)
        assert est.value == pytest.approx(6.0)  # blends with the init value

    def test_invalid_rho(self):
        with pytest.raises(QoSError):
            HistoryEstimator(rho=1.5)

    def test_peek(self):
        est = HistoryEstimator()
        assert est.peek() is None
        assert est.peek(default=7.0) == 7.0
        est.update(2.0)
        assert est.peek() == 2.0

    def test_observation_count(self):
        est = HistoryEstimator()
        est.update(1.0)
        est.update(2.0)
        assert est.observations == 2
        assert est.last_actual == 2.0

    @given(
        rho=st.floats(0.0, 1.0),
        values=st.lists(st.floats(0.1, 1000.0), min_size=1, max_size=30),
    )
    def test_property_convex_hull(self, rho, values):
        """The estimate always lies within [min, max] of the observations."""
        est = HistoryEstimator(rho=rho)
        for v in values:
            est.update(v)
        assert min(values) - 1e-9 <= est.value <= max(values) + 1e-9

    @given(values=st.lists(st.floats(0.1, 1000.0), min_size=2, max_size=30))
    def test_property_rho_one_equals_last(self, values):
        est = HistoryEstimator(rho=1.0)
        for v in values:
            est.update(v)
        assert est.value == pytest.approx(values[-1])

    @given(
        rho=st.floats(0.0, 1.0),
        constant=st.floats(0.1, 100.0),
        n=st.integers(1, 20),
    )
    def test_property_constant_input_fixed_point(self, rho, constant, n):
        """Feeding a constant keeps the estimate at that constant."""
        est = HistoryEstimator(rho=rho)
        for _ in range(n):
            est.update(constant)
        assert est.value == pytest.approx(constant)


class TestRegistry:
    def test_separate_estimators_per_muscle(self):
        reg = EstimatorRegistry()
        a = Execute(lambda v: v, name="a")
        b = Execute(lambda v: v, name="b")
        reg.observe_time(a, 1.0)
        reg.observe_time(b, 9.0)
        assert reg.t(a) == 1.0
        assert reg.t(b) == 9.0

    def test_card_estimators(self):
        reg = EstimatorRegistry()
        s = Split(lambda v: [v], name="s")
        reg.observe_card(s, 4)
        reg.observe_card(s, 8)
        assert reg.card(s) == pytest.approx(6.0)
        assert reg.card_int(s) == 6

    def test_card_int_ceils(self):
        reg = EstimatorRegistry(rho=0.5)
        s = Split(lambda v: [v], name="s")
        reg.observe_card(s, 2)
        reg.observe_card(s, 3)  # estimate 2.5
        assert reg.card_int(s) == 3

    def test_card_int_minimum_one(self):
        reg = EstimatorRegistry()
        s = Split(lambda v: [v], name="s")
        reg.observe_card(s, 0)
        assert reg.card_int(s) == 1
        assert reg.card_int_zero(s) == 0

    def test_negative_rejected(self):
        reg = EstimatorRegistry()
        m = Execute(lambda v: v)
        with pytest.raises(ValueError):
            reg.observe_time(m, -1.0)
        with pytest.raises(ValueError):
            reg.observe_card(Split(lambda v: [v]), -2)

    def test_invalid_rho(self):
        with pytest.raises(QoSError):
            EstimatorRegistry(rho=-0.1)


class TestReadiness:
    def make_map(self):
        fs = Split(lambda xs: [xs], name="fs")
        fe = Execute(lambda xs: xs, name="fe")
        fm = Merge(lambda rs: rs, name="fm")
        return Map(fs, Seq(fe), fm), fs, fe, fm

    def test_not_ready_until_all_observed(self):
        skel, fs, fe, fm = self.make_map()
        reg = EstimatorRegistry()
        assert not reg.ready_for(skel)
        reg.observe_time(fs, 1.0)
        reg.observe_card(fs, 2)
        reg.observe_time(fe, 1.0)
        assert not reg.ready_for(skel)  # fm missing
        reg.observe_time(fm, 1.0)
        assert reg.ready_for(skel)

    def test_split_needs_cardinality(self):
        skel, fs, fe, fm = self.make_map()
        reg = EstimatorRegistry()
        reg.observe_time(fs, 1.0)
        reg.observe_time(fe, 1.0)
        reg.observe_time(fm, 1.0)
        assert not reg.ready_for(skel)  # |fs| missing
        reg.observe_card(fs, 3)
        assert reg.ready_for(skel)

    def test_while_needs_condition_card(self):
        fc = lambda v: False
        skel = While(fc, Seq(lambda v: v))
        reg = EstimatorRegistry()
        reg.observe_time(skel.condition, 0.1)
        reg.observe_time(skel.subskel.execute, 0.1)
        assert not reg.ready_for(skel)
        reg.observe_card(skel.condition, 2)
        assert reg.ready_for(skel)

    def test_for_needs_no_cardinality(self):
        skel = For(3, Seq(Execute(lambda v: v, name="body")))
        reg = EstimatorRegistry()
        reg.observe_time(skel.subskel.execute, 0.5)
        assert reg.ready_for(skel)

    def test_dac_needs_both_cards(self):
        skel = DivideAndConquer(
            lambda v: False, lambda v: [v], Seq(lambda v: v), lambda rs: rs
        )
        reg = EstimatorRegistry()
        for m in skel.muscles():
            reg.observe_time(m, 0.1)
        assert not reg.ready_for(skel)
        reg.observe_card(skel.condition, 1)
        reg.observe_card(skel.split, 2)
        assert reg.ready_for(skel)

    def test_missing_for_lists_names(self):
        skel, fs, fe, fm = self.make_map()
        reg = EstimatorRegistry()
        missing = reg.missing_for(skel)
        assert any("fs" in m for m in missing)
        assert any(m.startswith("|") for m in missing) or len(missing) == 4

    def test_warm_initialization_makes_ready(self):
        skel, fs, fe, fm = self.make_map()
        reg = EstimatorRegistry()
        reg.time_estimator(fs).initialize(1.0)
        reg.card_estimator(fs).initialize(2.0)
        reg.time_estimator(fe).initialize(1.0)
        reg.time_estimator(fm).initialize(1.0)
        assert reg.ready_for(skel)
