"""Unit + property tests for the alternative estimation algorithms."""

import pytest
from hypothesis import given, strategies as st

from repro.core.estimator import EstimatorRegistry
from repro.core.estimators_ext import (
    KalmanEstimator,
    MedianEstimator,
    PercentileEstimator,
    SlidingWindowEstimator,
)
from repro.errors import EstimateNotReadyError, QoSError
from repro.skeletons import Execute

ALL = (
    lambda: SlidingWindowEstimator(window=4),
    lambda: MedianEstimator(window=5),
    lambda: PercentileEstimator(window=5, percentile=0.8),
    lambda: KalmanEstimator(),
)


@pytest.mark.parametrize("factory", ALL, ids=["window", "median", "p80", "kalman"])
class TestCommonInterface:
    def test_not_ready_initially(self, factory):
        est = factory()
        assert not est.ready
        with pytest.raises(EstimateNotReadyError):
            _ = est.value
        assert est.peek(default=1.5) == 1.5

    def test_first_observation(self, factory):
        est = factory()
        est.update(3.0)
        assert est.ready
        assert est.value == pytest.approx(3.0)

    def test_initialize(self, factory):
        est = factory()
        est.initialize(9.0)
        assert est.ready and est.initialized
        assert est.value == pytest.approx(9.0)

    def test_counts(self, factory):
        est = factory()
        est.update(1.0)
        est.update(2.0)
        assert est.observations == 2
        assert est.last_actual == 2.0

    @given(values=st.lists(st.floats(0.1, 100.0), min_size=1, max_size=25))
    def test_property_convex_hull(self, factory, values):
        est = factory()
        for v in values:
            est.update(v)
        assert min(values) - 1e-6 <= est.value <= max(values) + 1e-6

    def test_constant_signal_fixed_point(self, factory):
        est = factory()
        for _ in range(20):
            est.update(4.2)
        assert est.value == pytest.approx(4.2, rel=1e-6)

    def test_registry_factory_integration(self, factory):
        reg = EstimatorRegistry(factory=factory)
        m = Execute(lambda v: v, name="m")
        reg.observe_time(m, 2.0)
        assert reg.t(m) == pytest.approx(2.0)
        assert type(reg.time_estimator(m)) is type(factory())


class TestWindowSemantics:
    def test_window_forgets(self):
        est = SlidingWindowEstimator(window=2)
        for v in (10.0, 1.0, 1.0, 1.0):
            est.update(v)
        assert est.value == pytest.approx(1.0)

    def test_mean(self):
        est = SlidingWindowEstimator(window=4)
        for v in (1.0, 2.0, 3.0):
            est.update(v)
        assert est.value == pytest.approx(2.0)

    def test_bad_window(self):
        with pytest.raises(QoSError):
            SlidingWindowEstimator(window=0)

    def test_observations_override_initial(self):
        est = SlidingWindowEstimator(window=3)
        est.initialize(100.0)
        est.update(1.0)
        assert est.value == pytest.approx(1.0)


class TestMedian:
    def test_outlier_robust(self):
        est = MedianEstimator(window=5)
        for v in (1.0, 1.0, 50.0, 1.0, 1.0):
            est.update(v)
        assert est.value == pytest.approx(1.0)

    def test_even_window_midpoint(self):
        est = MedianEstimator(window=4)
        for v in (1.0, 3.0):
            est.update(v)
        assert est.value == pytest.approx(2.0)


class TestPercentile:
    def test_upper_percentile_conservative(self):
        est = PercentileEstimator(window=5, percentile=0.8)
        for v in (1.0, 2.0, 3.0, 4.0, 5.0):
            est.update(v)
        assert est.value >= 4.0

    def test_percentile_one_is_max(self):
        est = PercentileEstimator(window=5, percentile=1.0)
        for v in (2.0, 9.0, 5.0):
            est.update(v)
        assert est.value == pytest.approx(9.0)

    def test_validation(self):
        with pytest.raises(QoSError):
            PercentileEstimator(percentile=0.0)


class TestKalman:
    def test_converges_on_noisy_constant(self):
        import random

        rng = random.Random(7)
        est = KalmanEstimator()
        for _ in range(200):
            est.update(5.0 + rng.gauss(0, 0.5))
        assert est.value == pytest.approx(5.0, abs=0.4)

    def test_tracks_drift(self):
        est = KalmanEstimator(process_noise=1e-2)
        for step in range(100):
            est.update(1.0 + step * 0.05)
        # Should be well past the initial value by the end of the drift.
        assert est.value > 4.0

    def test_validation(self):
        with pytest.raises(QoSError):
            KalmanEstimator(process_noise=-1)


class TestControllerWithAlternativeEstimators:
    @pytest.mark.parametrize(
        "factory", ALL, ids=["window", "median", "p80", "kalman"]
    )
    def test_fig5_scenario_still_meets_goal(self, factory):
        """The autonomic loop is estimator-agnostic: every alternative
        algorithm still drives the FIG5 scenario inside its goal."""
        from repro.core.controller import AutonomicController
        from repro.core.qos import QoS
        from repro.runtime.simulator import SimulatedPlatform
        from repro.workloads.synthetic_text import TweetCorpusGenerator
        from repro.workloads.wordcount import TwitterCountApp

        corpus = TweetCorpusGenerator(seed=2014).corpus(200)
        app = TwitterCountApp()
        platform = SimulatedPlatform(
            parallelism=1, cost_model=app.cost_model(), max_parallelism=24
        )
        AutonomicController(
            platform, app.skeleton, qos=QoS.wall_clock(9.5, max_lp=24),
            estimators=EstimatorRegistry(factory=factory),
        )
        result = app.skeleton.compute(corpus, platform=platform)
        assert result == app.reference_count(corpus)
        assert platform.now() <= 9.5 + 1e-9
