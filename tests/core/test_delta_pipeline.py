"""The delta pipeline's building blocks, unit-by-unit.

The end-to-end equivalence (patched projections == full walks at real
analysis points) lives in ``test_plan_engine.py``; this module pins the
pieces: the ADG / machine-registry changelogs and their compaction
(ISSUE 5 satellite: O(activities) memory), the value-change estimator
version, ``pin_actuals_delta``, the quantized ``now``-bucket plan-cache
mode and its skew bound, and the patch path on the *real* thread/process
backends.
"""

import pytest

from repro import PlatformSpec, SimulatedPlatform, run
from repro.core.adg import ADG
from repro.core.analysis import ExecutionAnalyzer, is_analysis_point
from repro.core.delta import ChangeDelta
from repro.core.estimator import EstimatorRegistry
from repro.core.planning import PlanCache
from repro.core.schedule import (
    limited_lp_schedule,
    pin_actuals,
    pin_actuals_delta,
)
from repro.events.bus import Listener
from repro.runtime.costmodel import ConstantCostModel
from repro.runtime.registry import make_platform
from repro.skeletons import Execute, Seq
from tests.conftest import make_warm_snapshot, sleepy_map_program
from tests.core.test_plan_engine import (
    _PatchPathChecker,
    assert_pinned_equal,
    warm_map_analyzer,
)


def timed_sim(parallelism=3):
    return SimulatedPlatform(
        parallelism=parallelism,
        cost_model=ConstantCostModel(1.0),
        max_parallelism=8,
    )


# ---------------------------------------------------------------------------
# ChangeDelta


class TestChangeDelta:
    def test_empty_and_truthiness(self):
        empty = ChangeDelta(1, 1, structural=False)
        assert empty.empty and not empty
        touched = ChangeDelta(1, 3, structural=False, touched=(4,))
        assert not touched.empty and touched
        structural = ChangeDelta(1, 2, structural=True)
        assert not structural.empty and structural


# ---------------------------------------------------------------------------
# ADG changelog


class TestADGChangelog:
    def build(self):
        adg = ADG()
        a = adg.add("a", 1.0)
        b = adg.add("b", 2.0, preds=[a])
        return adg, a, b

    def test_add_is_structural(self):
        adg, _a, _b = self.build()
        delta = adg.delta_since(0)
        assert delta is not None and delta.structural

    def test_update_activity_is_a_touch(self):
        adg, a, b = self.build()
        rev = adg.rev
        assert adg.update_activity(a, 0.0, 1.0, 1.0)
        delta = adg.delta_since(rev)
        assert delta == ChangeDelta(rev, adg.rev, False, (a,))
        # A no-op update records nothing.
        rev2 = adg.rev
        assert not adg.update_activity(a, 0.0, 1.0, 1.0)
        assert adg.delta_since(rev2).empty

    def test_bare_touch_is_structural(self):
        adg, _a, _b = self.build()
        rev = adg.rev
        adg.touch()
        assert adg.delta_since(rev).structural

    def test_future_rev_and_compaction_window(self):
        adg, a, _b = self.build()
        assert adg.delta_since(adg.rev + 5) is None
        adg.update_activity(a, 0.0, 1.0, 1.0)
        adg.compact_changelog(adg.rev)
        assert adg.delta_since(adg.rev - 1) is None  # below the floor
        assert adg.delta_since(adg.rev).empty

    def test_update_activity_validation(self):
        from repro.errors import ADGError

        adg, a, _b = self.build()
        with pytest.raises(ADGError):
            adg.update_activity(a, None, 1.0, 1.0)
        with pytest.raises(ADGError):
            adg.update_activity(a, 2.0, 1.0, 1.0)
        with pytest.raises(ADGError):
            adg.update_activity(a, 0.0, 1.0, -1.0)


# ---------------------------------------------------------------------------
# MachineRegistry changelog


class _ChangelogProbe(Listener):
    """Record (rev window, delta) around every analysis point."""

    def __init__(self, analyzer):
        self.analyzer = analyzer
        self.samples = []
        self._last_rev = 0

    def on_event(self, event):
        machines = self.analyzer.machines
        with machines.lock:
            delta = machines.delta_since(self._last_rev)
            self.samples.append((event.label, delta))
            self._last_rev = machines.rev
        return event.value


class TestRegistryChangelog:
    def run_map(self, width=4):
        program, analyzer = warm_map_analyzer(width=width, work_t=1.0)
        platform = timed_sim()
        probe = _ChangelogProbe(analyzer)
        platform.add_listener(analyzer)
        platform.add_listener(probe)
        run(program, 3, platform)
        return analyzer, probe

    def test_span_only_and_structural_classification(self):
        analyzer, probe = self.run_map()
        by_label = {}
        for label, delta in probe.samples:
            by_label.setdefault(label, []).append(delta)
        # Machine creation (the map's first event) and split cardinality
        # are structural; the BEFORE-SPLIT on the already-created machine
        # only starts a fixed span.
        assert all(d.structural for d in by_label["map@b"])
        assert all(d.structural for d in by_label["map@as"])
        assert all(
            not d.structural and d.touched for d in by_label["map@bs"]
        )
        # A nested seq's BEFORE is its machine's first event (creation =
        # structural); its AFTER is the archetypal span-only touch.
        assert all(d.structural for d in by_label["seq@b"])
        assert all(
            not d.structural and d.touched for d in by_label["seq@a"]
        )
        # Fan-out control markers are projection no-ops: no touch at all.
        assert all(
            not d.structural and not d.touched for d in by_label["map@bn"]
        )
        # The merge muscle closing is span-only; the root finishing is not.
        assert all(
            not d.structural and d.touched for d in by_label["map@bm"]
        )
        assert all(not d.structural for d in by_label["map@am"])
        assert all(d.structural for d in by_label["map@a"])

    def test_while_condition_before_is_structural(self):
        from repro.skeletons import Condition, While

        state = {"left": 2}

        def cond(_v):
            if state["left"] > 0:
                state["left"] -= 1
                return True
            return False

        program = While(
            Condition(cond, name="wcond"),
            Seq(Execute(lambda v: v, name="wbody")),
        )
        analyzer = ExecutionAnalyzer(skeleton=program)
        platform = timed_sim()
        probe = _ChangelogProbe(analyzer)
        platform.add_listener(analyzer)
        platform.add_listener(probe)
        run(program, 1, platform)
        before_cond = [
            d for label, d in probe.samples if label == "while@bc"
        ]
        # The first is machine creation; every one is structural (a new
        # condition span appears, which a patch could not represent).
        assert before_cond and all(d.structural for d in before_cond)

    def test_delta_since_future_and_compacted_windows(self):
        analyzer, _probe = self.run_map()
        machines = analyzer.machines
        assert machines.delta_since(machines.rev + 1) is None
        machines.compact_changelog(machines.rev)
        assert machines.delta_since(0) is None
        assert machines.delta_since(machines.rev) is not None

    def test_reset_is_structural(self):
        analyzer, _probe = self.run_map()
        machines = analyzer.machines
        rev = machines.rev
        machines.reset()
        assert machines.delta_since(rev).structural
        assert machines.changelog_size() == 0

    def test_changelog_stays_bounded_on_long_run(self):
        """Satellite: a long-running execution's changelog is
        O(activities) — per-machine coalescing plus engine-driven
        compaction keep it far below the event count."""
        program, analyzer = warm_map_analyzer(
            width=8, qos=None, work_t=1.0
        )
        platform = timed_sim()
        sizes = []

        class SizeProbe(Listener):
            def on_event(self, event):
                sizes.append(analyzer.machines.changelog_size())
                # Rebalance-like consumption: project at every analysis
                # point so the engine compacts behind itself.
                if is_analysis_point(event):
                    roots = analyzer.unfinished_roots()
                    if roots and analyzer.ready(roots):
                        analyzer.plan.projection(platform.now(), roots)
                return event.value

        platform.add_listener(analyzer)
        platform.add_listener(SizeProbe())
        for wave in range(5):
            run(program, wave, platform)
        machines = analyzer.machines
        assert machines.rev > 100  # plenty of events flowed
        # O(activities): never more entries than machines exist, however
        # many events flowed (per-machine coalescing).
        assert max(sizes) <= len(machines)
        # Engine-driven compaction sheds history behind the live frontier
        # (the size drops back repeatedly instead of only growing)...
        late = sizes[len(sizes) // 2 :]
        assert min(late) < max(sizes)
        # ...and an explicit compaction to the current revision, as a
        # caller with no live plans would issue, empties the log.
        machines.compact_changelog(machines.rev)
        assert machines.changelog_size() == 0


# ---------------------------------------------------------------------------
# estimator version: value-change semantics


class TestEstimatorValueVersion:
    def test_converged_observation_does_not_bump(self):
        program, analyzer = warm_map_analyzer(width=2, work_t=1.0)
        est = analyzer.estimators
        work = next(m for m in program.muscles() if m.name == "work")
        v0 = est.version
        est.observe_time(work, 1.0)  # 0.5*1.0 + 0.5*1.0 == 1.0 exactly
        assert est.version == v0
        est.observe_time(work, 3.0)  # drifts -> must bump
        assert est.version > v0

    def test_identical_reinitialize_does_not_bump(self):
        est = EstimatorRegistry()
        program, _an = warm_map_analyzer(width=2)
        work = next(m for m in program.muscles() if m.name == "work")
        est.initialize_time(work, 2.0)
        v1 = est.version
        est.initialize_time(work, 2.0)
        assert est.version == v1
        est.initialize_time(work, 2.5)
        assert est.version == v1 + 1


# ---------------------------------------------------------------------------
# pin_actuals_delta


def staged_adg():
    """A 6-activity diamond mid-flight: finished, running and pending."""
    adg = ADG()
    a = adg.add("a", 1.0, start=0.0, end=1.0)
    b = adg.add("b", 2.0, preds=[a], start=1.0, end=3.0)
    c = adg.add("c", 2.0, preds=[a], start=1.0)  # running
    d = adg.add("d", 1.5, preds=[b])
    e = adg.add("e", 1.0, preds=[b, c])
    f = adg.add("f", 0.5, preds=[d, e])
    return adg, (a, b, c, d, e, f)


class TestPinActualsDelta:
    def test_advancing_now_matches_full_pin(self):
        adg, _ids = staged_adg()
        base = pin_actuals(adg, 2.0)
        for now in (2.5, 3.0, 4.5):
            delta = pin_actuals_delta(adg, now, base, touched=())
            assert_pinned_equal(delta, pin_actuals(adg, now))
            base = delta

    def test_touched_transitions_match_full_pin(self):
        adg, (a, b, c, d, e, f) = staged_adg()
        base = pin_actuals(adg, 2.0)
        # c finishes, d starts running.
        assert adg.update_activity(c, 1.0, 3.5, 2.5)
        assert adg.update_activity(d, 3.0, None, 1.5)
        patched = pin_actuals_delta(adg, 4.0, base, touched=(c, d))
        assert_pinned_equal(patched, pin_actuals(adg, 4.0))
        # And the patched base seeds identical frontier schedules.
        from repro.core.schedule import remaining_critical_path, schedule_pending

        cp = remaining_critical_path(adg)
        for lp in (1, 2, 3):
            assert (
                schedule_pending(adg, 4.0, lp, "critical-path", patched, cp).timeline()
                == limited_lp_schedule(adg, 4.0, lp).timeline()
            )

    def test_everything_finished_matches(self):
        adg, ids = staged_adg()
        base = pin_actuals(adg, 2.0)
        times = {ids[2]: (1.0, 3.0), ids[3]: (3.0, 4.5), ids[4]: (3.0, 4.0),
                 ids[5]: (4.5, 5.0)}
        for aid, (s, e) in times.items():
            adg.update_activity(aid, s, e, e - s)
        patched = pin_actuals_delta(adg, 6.0, base, touched=tuple(times))
        assert_pinned_equal(patched, pin_actuals(adg, 6.0))
        assert patched.to_schedule == 0


# ---------------------------------------------------------------------------
# quantized now-bucket mode


class TestQuantizedNowBuckets:
    def test_off_by_default_and_validation(self):
        assert PlanCache().now_quantum is None
        assert PlanCache().quantize(1.2345) == 1.2345
        with pytest.raises(ValueError, match="now_quantum"):
            PlanCache(now_quantum=0.0)
        with pytest.raises(ValueError, match="now_quantum"):
            PlanCache(now_quantum=-1.0)

    def test_quantize_floors_to_bucket(self):
        cache = PlanCache(now_quantum=0.25)
        assert cache.quantize(0.0) == 0.0
        assert cache.quantize(0.26) == 0.25
        assert cache.quantize(1.0) == 1.0
        assert cache.quantize(0.999) == 0.75

    def quantized_engines(self, q=0.25):
        _p1, exact = warm_map_analyzer(width=4, qos=None, work_t=1.0)
        _p2, quantized = warm_map_analyzer(
            width=4, qos=None, work_t=1.0, cache=PlanCache(now_quantum=q)
        )
        return exact.plan, quantized.plan

    def test_quantized_answers_equal_exact_answers_at_bucket_floor(self):
        """The quantized engine is *defined* as the exact engine driven
        by a clock floored to the bucket — decision skew comes only from
        the clock, never from the plan math."""
        exact, quantized = self.quantized_engines(q=0.25)
        adg_e = exact.structural_projection()
        adg_q = quantized.structural_projection()
        for now in (0.0, 0.1, 0.24, 0.26, 1.01, 2.76):
            floored = quantized.cache.quantize(now)
            for lp in (1, 2, 3):
                assert quantized.wct_at(adg_q, now, lp) == exact.wct_at(
                    adg_e, floored, lp
                )
            assert quantized.optimal_lp(adg_q, now) == exact.optimal_lp(
                adg_e, floored
            )
            assert quantized.minimal_lp(adg_q, now, now + 5.0) == exact.minimal_lp(
                adg_e, floored, now + 5.0
            )

    def test_skew_bounded_by_quantum(self):
        q = 0.25
        exact, quantized = self.quantized_engines(q=q)
        adg_e = exact.structural_projection()
        adg_q = quantized.structural_projection()
        for now in (0.01, 0.13, 0.24, 0.9, 1.49, 3.01):
            for lp in (1, 2, 4):
                skew = abs(
                    quantized.wct_at(adg_q, now, lp) - exact.wct_at(adg_e, now, lp)
                )
                assert skew <= q + 1e-9, (now, lp, skew)

    def test_same_bucket_reuses_plans_across_nows(self):
        _program, analyzer = warm_map_analyzer(
            width=4, qos=None, work_t=1.0, cache=PlanCache(now_quantum=0.5)
        )
        engine = analyzer.plan
        adg = engine.structural_projection()
        engine.wct_at(adg, 1.01, 2)
        passes = engine.cache.stats.schedule_passes
        hits = engine.cache.stats.hits
        engine.wct_at(adg, 1.3, 2)  # same 0.5-bucket
        engine.wct_at(adg, 1.49, 2)
        stats = engine.cache.stats
        assert stats.schedule_passes == passes  # no recompute
        assert stats.hits > hits
        engine.wct_at(adg, 1.51, 2)  # next bucket -> recompute
        assert engine.cache.stats.schedule_passes == passes + 1


# ---------------------------------------------------------------------------
# patch equivalence on the real backends (virtual is covered by the
# plan-engine property harness)


@pytest.mark.service_stress
@pytest.mark.parametrize("backend", ["threads", "processes"])
def test_patch_path_equivalence_on_real_backends(backend):
    """Patched projections/schedules == from-scratch walks while real
    worker threads/processes publish concurrently (the checker compares
    under the machine lock at every analysis point)."""
    width = 4
    program = sleepy_map_program(width, 0.01)
    analyzer = ExecutionAnalyzer(skeleton=program)
    analyzer.initialize_estimates(
        program,
        make_warm_snapshot(
            program,
            times={"svc_split": 0.001, "svc_leaf": 0.01, "svc_merge": 0.001},
            cards={"svc_split": float(width)},
        ),
    )
    platform = make_platform(PlatformSpec(kind=backend, workers=2, max_workers=4))
    try:
        checker = _PatchPathChecker(analyzer, platform)
        platform.add_listener(analyzer)
        platform.add_listener(checker)
        for wave in range(3):
            assert run(program, wave, platform) == wave * width
        assert checker.checked >= width
    finally:
        platform.shutdown()
