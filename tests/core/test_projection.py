"""Unit tests for structural ADG projection of unstarted skeletons."""

import pytest

from repro.core.adg import ADG
from repro.core.estimator import EstimatorRegistry
from repro.core.projection import estimated_total_work, project_skeleton
from repro.core.schedule import best_effort_schedule
from repro.skeletons import (
    DivideAndConquer,
    Execute,
    Farm,
    For,
    Fork,
    If,
    Map,
    Merge,
    Pipe,
    Seq,
    Split,
    While,
)


def registry_for(skel, t=1.0, card=2):
    reg = EstimatorRegistry()
    for muscle in skel.muscles():
        reg.time_estimator(muscle).initialize(t)
    for muscle in EstimatorRegistry.required_cards(skel):
        reg.card_estimator(muscle).initialize(card)
    return reg


def project(skel, reg):
    adg = ADG()
    terminals = project_skeleton(skel, adg, [], reg)
    return adg, terminals


class TestShapes:
    def test_seq_one_activity(self):
        skel = Seq(lambda v: v)
        adg, terms = project(skel, registry_for(skel))
        assert len(adg) == 1
        assert len(terms) == 1

    def test_map_shape(self):
        skel = Map(lambda v: [v], Seq(lambda v: v), sum)
        adg, terms = project(skel, registry_for(skel, card=3))
        # split + 3 children + merge
        assert len(adg) == 5
        merge = adg.activity(terms[0])
        assert len(merge.preds) == 3

    def test_pipe_chains(self):
        skel = Pipe(Seq(lambda v: v), Seq(lambda v: v))
        adg, terms = project(skel, registry_for(skel))
        assert len(adg) == 2
        assert adg.activity(terms[0]).preds == (0,)

    def test_for_repeats(self):
        skel = For(3, Seq(lambda v: v))
        adg, _ = project(skel, registry_for(skel))
        assert len(adg) == 3

    def test_while_iterations_plus_final_condition(self):
        skel = While(lambda v: True, Seq(lambda v: v))
        adg, terms = project(skel, registry_for(skel, card=2))
        # (cond + body) * 2 + final cond
        assert len(adg) == 5
        assert adg.activity(terms[0]).role == "condition"

    def test_while_card_zero(self):
        skel = While(lambda v: False, Seq(lambda v: v))
        reg = registry_for(skel, card=0)
        adg, terms = project(skel, reg)
        assert len(adg) == 1  # just the false condition

    def test_farm_transparent(self):
        skel = Farm(Seq(lambda v: v))
        adg, _ = project(skel, registry_for(skel))
        assert len(adg) == 1

    def test_fork_uses_branch_count(self):
        skel = Fork(lambda v: [v, v], [Seq(lambda v: v), Seq(lambda v: v)], sum)
        adg, _ = project(skel, registry_for(skel))
        assert len(adg) == 4  # split + 2 branches + merge

    def test_if_projects_expensive_branch(self):
        cheap = Seq(Execute(lambda v: v, name="cheap"))
        costly = Pipe(Seq(Execute(lambda v: v, name="c1")),
                      Seq(Execute(lambda v: v, name="c2")))
        skel = If(lambda v: True, cheap, costly)
        reg = registry_for(skel)
        adg, _ = project(skel, reg)
        # condition + the two-stage branch
        assert len(adg) == 3

    def test_dac_depth_zero_is_leaf(self):
        skel = DivideAndConquer(lambda v: False, lambda v: [v], Seq(lambda v: v), sum)
        reg = registry_for(skel, card=2)
        reg.card_estimator(skel.condition).initialize(0)
        adg, _ = project(skel, reg)
        assert len(adg) == 2  # cond + leaf

    def test_dac_depth_two_binary(self):
        skel = DivideAndConquer(lambda v: True, lambda v: [v, v], Seq(lambda v: v), sum)
        reg = registry_for(skel)
        reg.card_estimator(skel.condition).initialize(2)
        reg.card_estimator(skel.split).initialize(2)
        adg, _ = project(skel, reg)
        # depth 2 binary: 1 cond+split+merge at root, 2 at level 1,
        # 4 leaves (cond+leaf each)
        # root: cond split merge = 3; level1: 2*(3)=6; leaves: 4*(2)=8
        assert len(adg) == 17


class TestDurations:
    def test_durations_from_estimates(self):
        fs = Split(lambda v: [v], name="fs")
        fe = Execute(lambda v: v, name="fe")
        fm = Merge(sum, name="fm")
        skel = Map(fs, Seq(fe), fm)
        reg = EstimatorRegistry()
        reg.time_estimator(fs).initialize(10.0)
        reg.card_estimator(fs).initialize(3)
        reg.time_estimator(fe).initialize(15.0)
        reg.time_estimator(fm).initialize(5.0)
        adg, _ = project(skel, reg)
        # Paper figure 1 durations: best effort = 10 + 15 + 5
        assert best_effort_schedule(adg, 0.0).wct == 30.0

    def test_total_work(self):
        skel = Map(lambda v: [v], Seq(lambda v: v), sum)
        reg = registry_for(skel, t=2.0, card=3)
        # split 2 + 3*2 + merge 2
        assert estimated_total_work(skel, reg) == pytest.approx(10.0)


class TestErrors:
    def test_missing_estimate_raises(self):
        from repro.errors import EstimateNotReadyError

        skel = Seq(lambda v: v)
        with pytest.raises(EstimateNotReadyError):
            project(skel, EstimatorRegistry())


class TestEstimatedTotalWorkRegression:
    """``estimated_total_work`` no longer projects a throwaway ADG (it
    runs for every ``If`` of every projection walk); the direct
    structural sum must pin the old ADG-summing value **bit for bit** —
    float addition is order-sensitive, so the terms must be folded in
    exact activity-creation order."""

    @staticmethod
    def adg_sum(skel, reg):
        """The replaced implementation: project, then sum durations."""
        adg = ADG()
        project_skeleton(skel, adg, [], reg)
        return sum(a.duration for a in adg)

    @staticmethod
    def varied_registry(skel, card=2):
        """Distinct irrational-ish durations per muscle so any reordering
        of the float sum shows up in the low mantissa bits."""
        reg = EstimatorRegistry()
        for i, muscle in enumerate(skel.muscles()):
            reg.time_estimator(muscle).initialize(0.0137 + 0.61803398875 * (i + 1))
        for muscle in EstimatorRegistry.required_cards(skel):
            reg.card_estimator(muscle).initialize(card)
        return reg

    def check(self, skel, card=2):
        reg = self.varied_registry(skel, card=card)
        expected = self.adg_sum(skel, reg)
        got = estimated_total_work(skel, reg)
        assert got == expected
        if expected != 0:
            assert got.hex() == expected.hex()

    def test_every_pattern_bit_exact(self):
        leaf = lambda name: Seq(Execute(lambda v: v, name=name))
        cases = [
            leaf("e"),
            Farm(leaf("e")),
            Pipe(leaf("a"), leaf("b"), leaf("c")),
            For(3, leaf("e")),
            While(lambda v: False, leaf("e")),
            If(lambda v: True, Pipe(leaf("a"), leaf("b")), leaf("c")),
            Map(lambda v: [v], leaf("e"), sum),
            Fork(lambda v: [v, v], [leaf("a"), leaf("b")], sum),
            DivideAndConquer(
                lambda v: False, lambda v: [v, v], leaf("e"), sum
            ),
        ]
        for skel in cases:
            self.check(skel)

    def test_nested_structures_bit_exact(self):
        leaf = lambda name: Seq(Execute(lambda v: v, name=name))
        nested = Pipe(
            Map(
                lambda v: [v],
                If(
                    lambda v: True,
                    DivideAndConquer(
                        lambda v: False,
                        lambda v: [v, v],
                        While(lambda v: False, leaf("w")),
                        sum,
                    ),
                    For(2, leaf("f")),
                ),
                sum,
            ),
            Fork(lambda v: [v, v], [leaf("x"), Farm(leaf("y"))], sum),
        )
        for card in (0, 1, 2, 3):
            self.check(nested, card=card)

    def test_if_branch_choice_unchanged(self):
        """The If projection picks its branch by estimated_total_work;
        the rewritten sum must keep the same winner (ties included)."""
        cheap = Seq(Execute(lambda v: v, name="cheap"))
        dear = Pipe(
            Seq(Execute(lambda v: v, name="d1")),
            Seq(Execute(lambda v: v, name="d2")),
        )
        reg = EstimatorRegistry()
        for skel, t in ((cheap, 1.0), (dear, 5.0)):
            for m in skel.muscles():
                reg.time_estimator(m).initialize(t)
        cond = If(lambda v: True, cheap, dear)
        reg.time_estimator(cond.condition).initialize(0.5)
        adg = ADG()
        project_skeleton(cond, adg, [], reg)
        names = [a.name for a in adg.activities]
        assert "d1" in names and "cheap" not in names
        assert estimated_total_work(cond, reg) == self.adg_sum(cond, reg)
