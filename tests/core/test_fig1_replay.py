"""Replay the paper's Figure 1 state through the *tracking machines* and
verify the projected ADG reproduces the Figure 2 analysis.

This is the strongest fidelity test of the monitoring stack: instead of
hand-building the ADG (as the benches do), we feed the machines the exact
event history implied by the figure — outer split [0,10], two inner maps
executed over [10,70] with LP 2, the third inner split running since 65 —
and check that machines + projection + schedulers reproduce the paper's
numbers: best-effort WCT 100, optimal LP 3, limited-LP(2) WCT 115.
"""

import pytest

from repro.bench.fig1 import FIG1_ESTIMATES, FIG1_NOW, PAPER_FIG1_EXPECTED
from repro.core.estimator import EstimatorRegistry
from repro.core.schedule import (
    best_effort_schedule,
    limited_lp_schedule,
    minimal_lp_greedy,
)
from repro.core.statemachines import MachineRegistry
from repro.events.types import Event, When, Where
from repro.skeletons import Execute, Map, Merge, Seq, Split


@pytest.fixture
def replayed():
    fs = Split(lambda xs: [xs] * 3, name="fs")
    fe = Execute(lambda xs: xs, name="fe")
    fm = Merge(lambda rs: rs, name="fm")
    inner = Map(fs, Seq(fe), fm)
    outer = Map(fs, inner, fm)

    est = EstimatorRegistry()
    # The paper's givens: t(fs)=10, t(fe)=15, t(fm)=5, |fs|=3.
    est.time_estimator(fs).initialize(FIG1_ESTIMATES["t_fs"])
    est.card_estimator(fs).initialize(FIG1_ESTIMATES["fs_card"])
    est.time_estimator(fe).initialize(FIG1_ESTIMATES["t_fe"])
    est.time_estimator(fm).initialize(FIG1_ESTIMATES["t_fm"])
    machines = MachineRegistry(est)

    def emit(skel, index, when, where, ts, parent=None, **extra):
        machines.on_event(
            Event(
                skeleton=skel, kind=skel.kind, when=when, where=where,
                index=index, parent_index=parent, value=None, timestamp=ts,
                extra=extra,
            )
        )

    B, A = When.BEFORE, When.AFTER
    SK, SP, ME, NE = Where.SKELETON, Where.SPLIT, Where.MERGE, Where.NESTED

    # Outer map (index 0): split [0, 10] -> 3 sub-problems.
    emit(outer, 0, B, SK, 0.0)
    emit(outer, 0, B, SP, 0.0)
    emit(outer, 0, A, SP, 10.0, fs_card=3)

    # Inner map 1 (index 1): split [10,20], fes [20,35]x2 + [35,50],
    # merge [65,70] (finished).
    emit(inner, 1, B, SK, 10.0, parent=0)
    emit(inner, 1, B, SP, 10.0, parent=0)
    emit(inner, 1, A, SP, 20.0, parent=0, fs_card=3)
    for idx, (s, e) in zip((10, 11, 12), ((20, 35), (20, 35), (35, 50))):
        emit(inner.subskel, idx, B, SK, float(s), parent=1)
        emit(inner.subskel, idx, A, SK, float(e), parent=1)
    emit(inner, 1, B, ME, 65.0, parent=0)
    emit(inner, 1, A, ME, 70.0, parent=0)
    emit(inner, 1, A, SK, 70.0, parent=0)

    # Inner map 2 (index 2): split [10,20], fes [35,50],[50,65],[50,65];
    # merge not started.
    emit(inner, 2, B, SK, 10.0, parent=0)
    emit(inner, 2, B, SP, 10.0, parent=0)
    emit(inner, 2, A, SP, 20.0, parent=0, fs_card=3)
    for idx, (s, e) in zip((20, 21, 22), ((35, 50), (50, 65), (50, 65))):
        emit(inner.subskel, idx, B, SK, float(s), parent=2)
        emit(inner.subskel, idx, A, SK, float(e), parent=2)

    # Inner map 3 (index 3): split started at 65, still running at 70.
    emit(inner, 3, B, SK, 65.0, parent=0)
    emit(inner, 3, B, SP, 65.0, parent=0)

    adg, terminals = machines.project_roots(FIG1_NOW)
    return adg, terminals, machines


class TestProjectedStructure:
    def test_activity_count(self, replayed):
        adg, _, _ = replayed
        # 1 outer split + 3 x (split + 3 fe + merge) + outer merge = 17.
        assert len(adg) == 17

    def test_terminal_is_outer_merge(self, replayed):
        adg, terminals, _ = replayed
        assert len(terminals) == 1
        assert adg.activity(terminals[0]).role == "merge"

    def test_finished_running_pending_mix(self, replayed):
        adg, _, _ = replayed
        statuses = [a.status for a in adg]
        assert statuses.count("finished") == 10  # outer split, m1 (5), m2 split+3 fes
        assert statuses.count("running") == 1  # m3's split
        assert statuses.count("pending") == 6  # m2 merge, m3 fes+merge, outer merge

    def test_validates(self, replayed):
        adg, _, _ = replayed
        adg.validate()


class TestPaperNumbers:
    def test_best_effort_wct(self, replayed):
        adg, _, _ = replayed
        be = best_effort_schedule(adg, FIG1_NOW)
        assert be.wct == pytest.approx(PAPER_FIG1_EXPECTED["best_effort_wct"])

    def test_optimal_lp(self, replayed):
        adg, _, _ = replayed
        be = best_effort_schedule(adg, FIG1_NOW)
        assert be.peak(from_time=FIG1_NOW) == PAPER_FIG1_EXPECTED["optimal_lp"]

    def test_limited_lp2(self, replayed):
        adg, _, _ = replayed
        l2 = limited_lp_schedule(adg, FIG1_NOW, 2)
        assert l2.wct == pytest.approx(PAPER_FIG1_EXPECTED["limited_lp2_wct"])

    def test_goal_100_needs_lp3(self, replayed):
        adg, _, _ = replayed
        found = minimal_lp_greedy(adg, FIG1_NOW, PAPER_FIG1_EXPECTED["wct_goal"])
        assert found is not None
        assert found[0] == PAPER_FIG1_EXPECTED["lp_increase_to"]

    def test_running_split_projected_to_75(self, replayed):
        adg, _, _ = replayed
        be = best_effort_schedule(adg, FIG1_NOW)
        running = [a for a in adg if a.status == "running"]
        assert len(running) == 1
        assert be.end_of(running[0].id) == pytest.approx(75.0)
