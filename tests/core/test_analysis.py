"""ExecutionAnalyzer — the factored-out Monitor/Analyze half of the loop."""

import pytest

from repro import (
    Execute,
    Fork,
    Map,
    Merge,
    QoS,
    Seq,
    SimulatedPlatform,
    Split,
)
from repro.core.analysis import ExecutionAnalyzer, is_analysis_point
from repro.errors import StateMachineError
from repro.events.types import When, Where
from repro.runtime.costmodel import ConstantCostModel
from repro.runtime.interpreter import submit
from repro.runtime.task import Execution


def timed_map(width=4):
    return Map(
        Split(lambda v, w=width: [v] * w, name="fs"),
        Seq(Execute(lambda v: v + 1, name="fe")),
        Merge(sum, name="fm"),
    )


def timed_platform(parallelism=2):
    return SimulatedPlatform(
        parallelism=parallelism,
        cost_model=ConstantCostModel(1.0),
        max_parallelism=8,
    )


class TestValidation:
    def test_rejects_unsupported_patterns(self):
        fork = Fork(
            Split(lambda v: [v], name="s"),
            [Seq(Execute(lambda v: v, name="e"))],
            Merge(sum, name="m"),
        )
        with pytest.raises(StateMachineError, match="fork"):
            ExecutionAnalyzer(skeleton=fork)

    def test_extensions_allow_them(self):
        fork = Fork(
            Split(lambda v: [v], name="s"),
            [Seq(Execute(lambda v: v, name="e"))],
            Merge(sum, name="m"),
        )
        ExecutionAnalyzer(skeleton=fork, extensions=True)  # no raise


class TestMonitoring:
    def test_not_ready_before_any_event(self):
        analyzer = ExecutionAnalyzer()
        assert not analyzer.ready()
        assert analyzer.analyze(0.0) is None
        assert not analyzer.finished

    def test_full_run_warms_estimators_and_finishes(self):
        platform = timed_platform()
        analyzer = ExecutionAnalyzer()
        platform.add_listener(analyzer)
        program = timed_map()
        assert submit(program, 1, platform).get() == 8
        assert analyzer.finished
        for muscle in program.muscles():
            assert analyzer.estimators.has_time(muscle)
        # The simulator charged 1 virtual second per muscle.
        assert analyzer.estimators.t(program.split) == pytest.approx(1.0)

    def test_scoped_analyzer_ignores_foreign_executions(self):
        platform = timed_platform()
        exec_a = Execution(platform.new_future())
        exec_b = Execution(platform.new_future())
        analyzer_a = ExecutionAnalyzer(execution_id=exec_a.id)
        platform.add_listener(analyzer_a)
        submit(timed_map(), 1, platform, execution=exec_a).get()
        submit(timed_map(), 1, platform, execution=exec_b).get()
        assert len(analyzer_a.machines.roots) == 1
        # Each of a's muscles observed exactly as often as it ran.
        root = analyzer_a.machines.roots[0]
        assert analyzer_a.estimators.time_estimator(root.skel.split).observations == 1


class TestAnalysisReports:
    def warmed_analyzer_and_platform(self, qos=None):
        """Run once to warm estimates, then start a second execution."""
        platform = timed_platform()
        program = timed_map()
        analyzer = ExecutionAnalyzer(qos=qos)
        platform.add_listener(analyzer)
        submit(program, 1, platform).get()
        return platform, program, analyzer

    def test_report_fields_mid_run(self):
        qos = QoS.wall_clock(100.0)
        platform, program, analyzer = self.warmed_analyzer_and_platform(qos)
        reports = []

        def on_split_done(event):
            if is_analysis_point(event) and event.where is Where.SPLIT:
                reports.append(analyzer.analyze(platform.now(), current_lp=2))
            return event.value

        platform.bus.add_callback(on_split_done, when=When.AFTER)
        submit(program, 1, platform).get()
        assert reports and reports[-1] is not None
        report = reports[-1]
        # Right after the second run's split: 4 leaves + merge pending.
        assert report.optimal_lp == 4
        assert report.wct_best_effort == pytest.approx(report.time + 2.0)
        # LP 2 runs the 4 leaves in two waves, then the merge.
        assert report.wct_current_lp == pytest.approx(report.time + 3.0)
        assert report.deadline == pytest.approx(analyzer.exec_start[
            analyzer.machines.roots[-1].index
        ] + 100.0)
        assert report.slack > 0 and not report.goal_at_risk
        assert report.minimal_lp(cap=8) == 1  # loose goal: LP 1 suffices
        assert report.wct_at(1) == pytest.approx(report.time + 5.0)

    def test_goal_at_risk_when_deadline_impossible(self):
        qos = QoS.wall_clock(0.5)  # each muscle costs 1 virtual second
        platform, program, analyzer = self.warmed_analyzer_and_platform(qos)
        reports = []

        def probe(event):
            if is_analysis_point(event):
                report = analyzer.analyze(platform.now())
                if report is not None:
                    reports.append(report)
            return event.value

        platform.bus.add_callback(probe, when=When.AFTER)
        submit(program, 1, platform).get()
        assert reports
        assert all(r.goal_at_risk for r in reports)
        assert all(r.minimal_lp(cap=8) is None for r in reports)

    def test_is_analysis_point(self):
        from tests.conftest import build_program

        platform = SimulatedPlatform(parallelism=1)
        seen = []
        platform.bus.add_callback(
            lambda e: (seen.append(is_analysis_point(e)), e.value)[1]
        )
        submit(build_program(("seq", 1)), 1, platform).get()
        assert any(seen)  # the seq AFTER is an analysis point


class TestStructuralPreStartAnalysis:
    """Warm-started executions analyze before their first event (ISSUE 3:
    lets the service arbiter grant real needs at the admit rebalance)."""

    def warm_analyzer(self, qos=None, execution_id=1):
        program = timed_map(width=4)
        analyzer = ExecutionAnalyzer(
            qos=qos, execution_id=execution_id, skeleton=program
        )
        from repro.core.persistence import snapshot_from_names

        analyzer.initialize_estimates(
            program,
            snapshot_from_names(
                program, times={"fs": 0.0, "fe": 1.0, "fm": 0.0}, cards={"fs": 4}
            ),
        )
        return program, analyzer

    def test_warm_prestart_analyzes_structurally(self):
        _program, analyzer = self.warm_analyzer(qos=QoS.wall_clock(10.0))
        report = analyzer.analyze(now=3.0)
        assert report is not None
        assert report.optimal_lp == 4  # the map's 4 estimated leaves
        assert report.deadline == 13.0  # assumes the execution starts now
        assert report.minimal_lp() == 1

    def test_cold_prestart_stays_cold(self):
        program = timed_map(width=4)
        analyzer = ExecutionAnalyzer(execution_id=1, skeleton=program)
        assert analyzer.analyze(now=0.0) is None

    def test_no_skeleton_stays_cold(self):
        analyzer = ExecutionAnalyzer(execution_id=1)
        assert analyzer.analyze(now=0.0) is None

    def test_observed_events_take_over_from_the_structure(self):
        platform = timed_platform()
        execution = Execution(platform.new_future())
        program, analyzer = self.warm_analyzer(
            qos=QoS.wall_clock(10.0), execution_id=execution.id
        )
        platform.add_listener(analyzer)
        submit(program, 1, platform, execution=execution)
        assert execution.future.get(timeout=5) == 8
        # Execution finished: analyze must NOT fall back to the structure
        # and report phantom pending work.
        assert analyzer.finished
        assert analyzer.analyze(platform.now()) is None
