"""Unit tests for the tracking state machines (paper Figures 3 and 4).

Machines are driven two ways: with hand-crafted synthetic events (exact
timestamps — unit level) and with real event streams recorded from
simulator runs (integration level, see test_registry.py).
"""

import pytest

from repro.core.estimator import EstimatorRegistry
from repro.core.adg import ADG
from repro.core.statemachines import (
    DacMachine,
    MapMachine,
    SeqMachine,
    WhileMachine,
)
from repro.events.types import Event, When, Where
from repro.skeletons import (
    DivideAndConquer,
    Execute,
    Map,
    Merge,
    Seq,
    Split,
    While,
)


def ev(skel, index, when, where, ts, parent=None, **extra):
    return Event(
        skeleton=skel, kind=skel.kind, when=when, where=where,
        index=index, parent_index=parent, value=None, timestamp=ts, extra=extra,
    )


class TestSeqMachine:
    """Figure 3: I --@b--> running --@a[idx==i]--> F, updating t(fe)."""

    def setup_method(self):
        self.skel = Seq(Execute(lambda v: v, name="fe"))
        self.reg = EstimatorRegistry(rho=0.5)
        self.machine = SeqMachine(self.skel, 0, None, self.reg)

    def test_records_duration(self):
        self.machine.on_event(ev(self.skel, 0, When.BEFORE, Where.SKELETON, 2.0))
        self.machine.on_event(ev(self.skel, 0, When.AFTER, Where.SKELETON, 5.5))
        assert self.reg.t(self.skel.execute) == pytest.approx(3.5)
        assert self.machine.finished

    def test_estimator_blends_on_second_run(self):
        for start, end in ((0.0, 4.0), (10.0, 12.0)):
            m = SeqMachine(self.skel, 0, None, self.reg)
            m.on_event(ev(self.skel, 0, When.BEFORE, Where.SKELETON, start))
            m.on_event(ev(self.skel, 0, When.AFTER, Where.SKELETON, end))
        # 0.5*2 + 0.5*4
        assert self.reg.t(self.skel.execute) == pytest.approx(3.0)

    def test_project_finished_uses_actuals(self):
        self.machine.on_event(ev(self.skel, 0, When.BEFORE, Where.SKELETON, 1.0))
        self.machine.on_event(ev(self.skel, 0, When.AFTER, Where.SKELETON, 2.0))
        adg = ADG()
        self.machine.project(adg, [], now=5.0)
        act = adg.activity(0)
        assert (act.start, act.end) == (1.0, 2.0)

    def test_project_running_uses_estimate(self):
        self.reg.time_estimator(self.skel.execute).initialize(4.0)
        self.machine.on_event(ev(self.skel, 0, When.BEFORE, Where.SKELETON, 1.0))
        adg = ADG()
        self.machine.project(adg, [], now=2.0)
        act = adg.activity(0)
        assert act.start == 1.0 and act.end is None
        assert act.duration == 4.0


class TestMapMachine:
    """Figure 4: I --@bs--> S --@as--> children --@bm--> M --@am--> F."""

    def setup_method(self):
        self.fs = Split(lambda v: [v, v], name="fs")
        self.fe = Execute(lambda v: v, name="fe")
        self.fm = Merge(sum, name="fm")
        self.skel = Map(self.fs, Seq(self.fe), self.fm)
        self.reg = EstimatorRegistry(rho=0.5)
        self.machine = MapMachine(self.skel, 0, None, self.reg)

    def feed_split(self, start=0.0, end=10.0, card=3):
        self.machine.on_event(ev(self.skel, 0, When.BEFORE, Where.SKELETON, start))
        self.machine.on_event(ev(self.skel, 0, When.BEFORE, Where.SPLIT, start))
        self.machine.on_event(
            ev(self.skel, 0, When.AFTER, Where.SPLIT, end, fs_card=card)
        )

    def test_split_updates_t_and_card(self):
        self.feed_split(0.0, 10.0, card=3)
        assert self.reg.t(self.fs) == pytest.approx(10.0)
        assert self.reg.card(self.fs) == pytest.approx(3.0)

    def test_merge_updates_t(self):
        self.feed_split()
        self.machine.on_event(ev(self.skel, 0, When.BEFORE, Where.MERGE, 50.0))
        self.machine.on_event(ev(self.skel, 0, When.AFTER, Where.MERGE, 55.0))
        assert self.reg.t(self.fm) == pytest.approx(5.0)

    def test_projection_before_split_uses_estimates(self):
        self.reg.time_estimator(self.fs).initialize(10.0)
        self.reg.card_estimator(self.fs).initialize(2)
        self.reg.time_estimator(self.fe).initialize(15.0)
        self.reg.time_estimator(self.fm).initialize(5.0)
        self.machine.on_event(ev(self.skel, 0, When.BEFORE, Where.SKELETON, 0.0))
        self.machine.on_event(ev(self.skel, 0, When.BEFORE, Where.SPLIT, 0.0))
        adg = ADG()
        terms = self.machine.project(adg, [], now=3.0)
        # running split + 2 estimated children + estimated merge
        assert len(adg) == 4
        assert adg.activity(terms[0]).role == "merge"

    def test_projection_after_split_uses_actual_card(self):
        self.reg.time_estimator(self.fe).initialize(15.0)
        self.reg.time_estimator(self.fm).initialize(5.0)
        self.reg.card_estimator(self.fs).initialize(99)  # should be ignored
        self.feed_split(card=2)
        adg = ADG()
        self.machine.project(adg, [], now=12.0)
        assert len(adg) == 4  # split + 2 (actual card) + merge

    def test_child_machines_attached_project_actuals(self):
        self.reg.time_estimator(self.fe).initialize(15.0)
        self.reg.time_estimator(self.fm).initialize(5.0)
        self.feed_split(card=2)
        child_skel = self.skel.subskel
        child = SeqMachine(child_skel, 1, 0, self.reg)
        self.machine.attach_child(child, ev(child_skel, 1, When.BEFORE, Where.SKELETON, 10.0, parent=0))
        child.on_event(ev(child_skel, 1, When.BEFORE, Where.SKELETON, 10.0, parent=0))
        child.on_event(ev(child_skel, 1, When.AFTER, Where.SKELETON, 24.0, parent=0))
        adg = ADG()
        self.machine.project(adg, [], now=30.0)
        finished = [a for a in adg if a.finished and a.role == "execute"]
        assert len(finished) == 1
        assert (finished[0].start, finished[0].end) == (10.0, 24.0)


class TestWhileMachine:
    def setup_method(self):
        self.skel = While(lambda v: v < 2, Seq(Execute(lambda v: v + 1, name="body")))
        self.fc = self.skel.condition
        self.reg = EstimatorRegistry(rho=0.5)
        self.machine = WhileMachine(self.skel, 0, None, self.reg)

    def cond(self, iteration, start, end, result):
        self.machine.on_event(
            ev(self.skel, 0, When.BEFORE, Where.CONDITION, start, iteration=iteration)
        )
        self.machine.on_event(
            ev(self.skel, 0, When.AFTER, Where.CONDITION, end,
               iteration=iteration, cond_result=result)
        )

    def test_observes_condition_time(self):
        self.machine.on_event(ev(self.skel, 0, When.BEFORE, Where.SKELETON, 0.0))
        self.cond(0, 0.0, 0.5, True)
        assert self.reg.t(self.fc) == pytest.approx(0.5)

    def test_observes_true_count_at_end(self):
        self.machine.on_event(ev(self.skel, 0, When.BEFORE, Where.SKELETON, 0.0))
        self.cond(0, 0.0, 0.1, True)
        self.cond(1, 1.0, 1.1, True)
        self.cond(2, 2.0, 2.1, False)
        self.machine.on_event(ev(self.skel, 0, When.AFTER, Where.SKELETON, 2.2))
        assert self.reg.card(self.fc) == pytest.approx(2.0)

    def test_projection_includes_remaining_iterations(self):
        self.reg.time_estimator(self.fc).initialize(0.1)
        self.reg.card_estimator(self.fc).initialize(3)
        self.reg.time_estimator(self.skel.subskel.execute).initialize(1.0)
        self.machine.on_event(ev(self.skel, 0, When.BEFORE, Where.SKELETON, 0.0))
        self.cond(0, 0.0, 0.1, True)  # one true observed, body not started
        adg = ADG()
        terms = self.machine.project(adg, [], now=0.2)
        # 3 bodies total (1 after the observed true + 2 estimated) and
        # 4 condition evaluations (1 actual + 2 estimated + final false).
        assert len(adg) == 7
        bodies = [a for a in adg if a.role == "execute"]
        conds = [a for a in adg if a.role == "condition"]
        assert len(bodies) == 3 and len(conds) == 4
        assert adg.activity(terms[0]).role == "condition"

    def test_projection_finished_loop(self):
        self.machine.on_event(ev(self.skel, 0, When.BEFORE, Where.SKELETON, 0.0))
        self.cond(0, 0.0, 0.1, False)
        self.machine.on_event(ev(self.skel, 0, When.AFTER, Where.SKELETON, 0.2))
        self.reg.time_estimator(self.fc).initialize(0.1)
        adg = ADG()
        self.machine.project(adg, [], now=1.0)
        assert len(adg) == 1  # only the false condition


class TestDacMachine:
    def setup_method(self):
        self.skel = DivideAndConquer(
            lambda v: v > 1,
            Split(lambda v: [v // 2, v // 2], name="fs"),
            Seq(Execute(lambda v: v, name="leafwork")),
            Merge(sum, name="fm"),
        )
        self.reg = EstimatorRegistry(rho=0.5)
        self.root = DacMachine(self.skel, 0, None, self.reg)

    def test_leaf_bootstraps_depth(self):
        # Root divides; child at depth 1 is a leaf -> bootstrap |fc| = 1.
        self.root.on_event(
            ev(self.skel, 0, When.BEFORE, Where.CONDITION, 0.0, depth=0)
        )
        self.root.on_event(
            ev(self.skel, 0, When.AFTER, Where.CONDITION, 0.1, depth=0, cond_result=True)
        )
        child = DacMachine(self.skel, 1, 0, self.reg)
        self.root.attach_child(child, ev(self.skel, 1, When.BEFORE, Where.SKELETON, 0.2, parent=0, depth=1))
        child.on_event(ev(self.skel, 1, When.BEFORE, Where.CONDITION, 0.2, depth=1))
        child.on_event(
            ev(self.skel, 1, When.AFTER, Where.CONDITION, 0.3, depth=1, cond_result=False)
        )
        assert self.reg.card(self.skel.condition) == pytest.approx(1.0)

    def test_subtree_depth(self):
        self.root.divided = True
        child = DacMachine(self.skel, 1, 0, self.reg)
        child.divided = True
        grand = DacMachine(self.skel, 2, 1, self.reg)
        grand.divided = False
        self.root.attach_child(child, ev(self.skel, 1, When.BEFORE, Where.SKELETON, 0, parent=0, depth=1))
        child.attach_child(grand, ev(self.skel, 2, When.BEFORE, Where.SKELETON, 0, parent=1, depth=2))
        assert self.root.subtree_depth() == 2

    def test_root_observes_depth_on_finish(self):
        self.root.on_event(ev(self.skel, 0, When.BEFORE, Where.CONDITION, 0.0, depth=0))
        self.root.on_event(
            ev(self.skel, 0, When.AFTER, Where.CONDITION, 0.1, depth=0, cond_result=False)
        )
        self.root.on_event(ev(self.skel, 0, When.AFTER, Where.SKELETON, 0.5, depth=0))
        # Leaf root: depth observed as 0 (the bootstrap observed 0 too).
        assert self.reg.card(self.skel.condition) == pytest.approx(0.0)

    def test_projection_unknown_outcome_uses_estimated_depth(self):
        for m in self.skel.muscles():
            self.reg.time_estimator(m).initialize(1.0)
        self.reg.card_estimator(self.skel.condition).initialize(1)
        self.reg.card_estimator(self.skel.split).initialize(2)
        self.root.on_event(ev(self.skel, 0, When.BEFORE, Where.CONDITION, 0.0, depth=0))
        adg = ADG()
        self.root.project(adg, [], now=0.5)
        # running cond + split + 2*(cond+leaf) + merge = 7
        assert len(adg) == 7
