"""Property-based tests of scheduler invariants over random ADGs."""

import pytest
from hypothesis import given, strategies as st

from repro.core.adg import ADG
from repro.core.schedule import (
    best_effort_schedule,
    exact_minimal_lp,
    limited_lp_schedule,
    minimal_lp_greedy,
    optimal_lp,
)

_EPS = 1e-9


@st.composite
def random_adg(draw, max_nodes=12):
    """Random DAG of pending activities (edges only point forward)."""
    n = draw(st.integers(1, max_nodes))
    adg = ADG()
    for i in range(n):
        preds = []
        if i:
            preds = draw(
                st.lists(st.integers(0, i - 1), unique=True, max_size=min(i, 3))
            )
        duration = draw(
            st.floats(0.0, 10.0, allow_nan=False, allow_infinity=False)
        )
        adg.add(f"a{i}", duration, preds)
    return adg


@st.composite
def random_adg_with_history(draw):
    """Random DAG where a prefix of activities already ran."""
    adg = draw(random_adg())
    now = draw(st.floats(0.0, 20.0))
    # Mark a dependency-closed prefix as finished with consistent times.
    t = 0.0
    for act in adg.activities:
        if act.preds and not all(adg.activity(p).finished for p in act.preds):
            continue
        if draw(st.booleans()):
            start = max(
                [t] + [adg.activity(p).end for p in act.preds if adg.activity(p).finished]
            )
            act.start = start
            act.end = start + act.duration
            t = act.end
    return adg, max(now, t)


class TestDependencyRespect:
    @given(random_adg())
    def test_best_effort_respects_deps(self, adg):
        result = best_effort_schedule(adg, 0.0)
        for act in adg.activities:
            for p in act.preds:
                assert result.start_of(act.id) >= result.end_of(p) - _EPS

    @given(random_adg(), st.integers(1, 4))
    def test_limited_respects_deps(self, adg, lp):
        result = limited_lp_schedule(adg, 0.0, lp)
        for act in adg.activities:
            for p in act.preds:
                assert result.start_of(act.id) >= result.end_of(p) - _EPS

    @given(random_adg(), st.integers(1, 4))
    def test_limited_respects_lp(self, adg, lp):
        result = limited_lp_schedule(adg, 0.0, lp)
        assert result.peak() <= lp

    @given(random_adg())
    def test_all_scheduled(self, adg):
        result = limited_lp_schedule(adg, 0.0, 2)
        assert set(result.entries) == {a.id for a in adg.activities}


class TestOrderings:
    @given(random_adg(), st.integers(1, 4))
    def test_best_effort_lower_bounds_limited(self, adg, lp):
        be = best_effort_schedule(adg, 0.0).wct
        lim = limited_lp_schedule(adg, 0.0, lp).wct
        assert be <= lim + _EPS

    @given(random_adg())
    def test_limited_at_optimal_reaches_best_effort(self, adg):
        opt = max(optimal_lp(adg, 0.0), 1)
        be = best_effort_schedule(adg, 0.0).wct
        lim = limited_lp_schedule(adg, 0.0, opt).wct
        assert lim == pytest.approx(be)

    @given(random_adg())
    def test_wct_nonincreasing_in_lp(self, adg):
        """Greedy list schedules with critical-path priority should not get
        worse when workers are added (holds for these graph sizes)."""
        wcts = [limited_lp_schedule(adg, 0.0, lp).wct for lp in (1, 2, 4, 8)]
        for a, b in zip(wcts, wcts[1:]):
            assert b <= a + _EPS


class TestHistoryHandling:
    @given(random_adg_with_history())
    def test_finished_pinned_everywhere(self, pair):
        adg, now = pair
        for strategy in (
            best_effort_schedule(adg, now),
            limited_lp_schedule(adg, now, 2),
        ):
            for act in adg.activities:
                if act.finished:
                    assert strategy.start_of(act.id) == act.start
                    assert strategy.end_of(act.id) == act.end

    @given(random_adg_with_history())
    def test_pending_never_starts_before_now(self, pair):
        adg, now = pair
        result = limited_lp_schedule(adg, now, 3)
        for act in adg.activities:
            if not act.started:
                assert result.start_of(act.id) >= now - _EPS

    @given(random_adg_with_history())
    def test_wct_never_before_now(self, pair):
        adg, now = pair
        assert best_effort_schedule(adg, now).wct >= now - _EPS or all(
            a.finished for a in adg.activities
        )


class TestMinimalSearch:
    @given(random_adg(max_nodes=8), st.floats(1.0, 40.0))
    def test_greedy_result_meets_deadline(self, adg, slack):
        deadline = best_effort_schedule(adg, 0.0).wct + slack - 1.0
        found = minimal_lp_greedy(adg, 0.0, deadline)
        if found is not None:
            lp, schedule = found
            assert schedule.wct <= deadline + _EPS

    @given(random_adg(max_nodes=7))
    def test_exact_never_exceeds_greedy(self, adg):
        deadline = limited_lp_schedule(adg, 0.0, 2).wct
        greedy = minimal_lp_greedy(adg, 0.0, deadline)
        exact = exact_minimal_lp(adg, 0.0, deadline)
        if greedy is not None:
            assert exact is not None
            assert exact <= greedy[0]
