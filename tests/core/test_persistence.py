"""Unit tests for estimate snapshots (warm-start initialization)."""

import json

import pytest

from repro import Execute, Map, Merge, Seq, Split, While
from repro.core.estimator import EstimatorRegistry
from repro.core.persistence import (
    SNAPSHOT_VERSION,
    atomic_write_text,
    load_estimates,
    muscle_keys,
    restore_estimates,
    save_estimates,
    snapshot_estimates,
)
from repro.errors import ReproError


def make_program():
    fs = Split(lambda v: [v, v], name="fs")
    fe = Execute(lambda v: v, name="fe")
    fm = Merge(sum, name="fm")
    return Map(fs, Seq(fe), fm)


class TestKeys:
    def test_keys_structural_and_unique(self):
        skel = make_program()
        keys = [k for k, _ in muscle_keys(skel)]
        assert len(keys) == len(set(keys)) == 3
        assert keys == ["0:split", "0:merge", "1:execute"]

    def test_same_shape_same_keys(self):
        a = dict(muscle_keys(make_program()))
        b = dict(muscle_keys(make_program()))
        assert set(a) == set(b)

    def test_while_keys(self):
        skel = While(lambda v: False, Seq(lambda v: v))
        keys = [k for k, _ in muscle_keys(skel)]
        assert keys == ["0:condition", "1:execute"]


class TestRoundTrip:
    def test_snapshot_restore_across_constructions(self):
        src = make_program()
        reg = EstimatorRegistry()
        reg.observe_time(src.split, 6.4)
        reg.observe_card(src.split, 5)
        reg.observe_time(src.subskel.execute, 0.04)
        reg.observe_time(src.merge, 0.05)
        snap = snapshot_estimates(src, reg)

        dst = make_program()  # fresh muscles, fresh uids
        reg2 = EstimatorRegistry()
        restored = restore_estimates(dst, reg2, snap)
        assert restored == 4
        assert reg2.t(dst.split) == pytest.approx(6.4)
        assert reg2.card(dst.split) == pytest.approx(5.0)
        assert reg2.ready_for(dst)
        assert reg2.time_estimator(dst.split).initialized

    def test_partial_snapshot(self):
        src = make_program()
        reg = EstimatorRegistry()
        reg.observe_time(src.split, 1.0)  # only one estimate present
        snap = snapshot_estimates(src, reg)
        dst = make_program()
        reg2 = EstimatorRegistry()
        assert restore_estimates(dst, reg2, snap) == 1
        assert not reg2.ready_for(dst)

    def test_unknown_keys_ignored(self):
        snap = {"version": 1, "estimates": {"42:execute": {"t": 1.0}}}
        skel = Seq(lambda v: v)
        assert restore_estimates(skel, EstimatorRegistry(), snap) == 0

    def test_malformed_rejected(self):
        with pytest.raises(ReproError):
            restore_estimates(Seq(lambda v: v), EstimatorRegistry(), {"bogus": 1})

    def test_future_version_rejected(self):
        # Regression: unknown snapshot versions used to be restored
        # blindly, silently misinterpreting future formats.
        snap = {"version": SNAPSHOT_VERSION + 1, "estimates": {}}
        with pytest.raises(ReproError, match="version"):
            restore_estimates(Seq(lambda v: v), EstimatorRegistry(), snap)

    def test_missing_version_treated_as_current(self):
        snap = {"estimates": {"0:execute": {"t": 2.0}}}
        skel = Seq(lambda v: v)
        reg = EstimatorRegistry()
        assert restore_estimates(skel, reg, snap) == 1
        assert reg.t(skel.execute) == pytest.approx(2.0)

    def test_json_file_round_trip(self, tmp_path):
        src = make_program()
        reg = EstimatorRegistry()
        for muscle in src.muscles():
            reg.observe_time(muscle, 2.0)
        reg.observe_card(src.split, 3)
        path = tmp_path / "estimates.json"
        save_estimates(path, src, reg)
        data = json.loads(path.read_text())
        assert data["version"] == 1

        dst = make_program()
        reg2 = EstimatorRegistry()
        assert load_estimates(path, dst, reg2) == 4
        assert reg2.t(dst.merge) == pytest.approx(2.0)


class TestAtomicWrites:
    def test_atomic_write_replaces_and_leaves_no_temp(self, tmp_path):
        path = tmp_path / "estimates.json"
        path.write_text("old")
        atomic_write_text(path, "new")
        assert path.read_text() == "new"
        assert [p.name for p in tmp_path.iterdir()] == ["estimates.json"]

    def test_failed_commit_leaves_old_content_and_no_temp(
        self, tmp_path, monkeypatch
    ):
        # Regression: save_estimates wrote with write_text — a crash
        # mid-write left a torn file under the destination name.  The
        # atomic path stages a temp file and renames, so a failure at
        # the commit point must leave the old content untouched and
        # clean up the staged file.
        import repro.core.persistence as persistence

        path = tmp_path / "estimates.json"
        path.write_text("precious")

        def boom(src, dst):
            raise OSError("simulated crash at the commit point")

        monkeypatch.setattr(persistence.os, "replace", boom)
        with pytest.raises(OSError, match="simulated crash"):
            atomic_write_text(path, "torn")
        monkeypatch.undo()
        assert path.read_text() == "precious"
        assert [p.name for p in tmp_path.iterdir()] == ["estimates.json"]

    def test_save_estimates_uses_atomic_path(self, tmp_path):
        src = make_program()
        reg = EstimatorRegistry()
        reg.observe_time(src.split, 1.0)
        path = tmp_path / "estimates.json"
        save_estimates(path, src, reg)
        assert json.loads(path.read_text())["version"] == SNAPSHOT_VERSION
        assert [p.name for p in tmp_path.iterdir()] == ["estimates.json"]
