"""Unit tests for estimate snapshots (warm-start initialization)."""

import json

import pytest

from repro import Execute, Map, Merge, Seq, Split, While
from repro.core.estimator import EstimatorRegistry
from repro.core.persistence import (
    load_estimates,
    muscle_keys,
    restore_estimates,
    save_estimates,
    snapshot_estimates,
)
from repro.errors import ReproError


def make_program():
    fs = Split(lambda v: [v, v], name="fs")
    fe = Execute(lambda v: v, name="fe")
    fm = Merge(sum, name="fm")
    return Map(fs, Seq(fe), fm)


class TestKeys:
    def test_keys_structural_and_unique(self):
        skel = make_program()
        keys = [k for k, _ in muscle_keys(skel)]
        assert len(keys) == len(set(keys)) == 3
        assert keys == ["0:split", "0:merge", "1:execute"]

    def test_same_shape_same_keys(self):
        a = dict(muscle_keys(make_program()))
        b = dict(muscle_keys(make_program()))
        assert set(a) == set(b)

    def test_while_keys(self):
        skel = While(lambda v: False, Seq(lambda v: v))
        keys = [k for k, _ in muscle_keys(skel)]
        assert keys == ["0:condition", "1:execute"]


class TestRoundTrip:
    def test_snapshot_restore_across_constructions(self):
        src = make_program()
        reg = EstimatorRegistry()
        reg.observe_time(src.split, 6.4)
        reg.observe_card(src.split, 5)
        reg.observe_time(src.subskel.execute, 0.04)
        reg.observe_time(src.merge, 0.05)
        snap = snapshot_estimates(src, reg)

        dst = make_program()  # fresh muscles, fresh uids
        reg2 = EstimatorRegistry()
        restored = restore_estimates(dst, reg2, snap)
        assert restored == 4
        assert reg2.t(dst.split) == pytest.approx(6.4)
        assert reg2.card(dst.split) == pytest.approx(5.0)
        assert reg2.ready_for(dst)
        assert reg2.time_estimator(dst.split).initialized

    def test_partial_snapshot(self):
        src = make_program()
        reg = EstimatorRegistry()
        reg.observe_time(src.split, 1.0)  # only one estimate present
        snap = snapshot_estimates(src, reg)
        dst = make_program()
        reg2 = EstimatorRegistry()
        assert restore_estimates(dst, reg2, snap) == 1
        assert not reg2.ready_for(dst)

    def test_unknown_keys_ignored(self):
        snap = {"version": 1, "estimates": {"42:execute": {"t": 1.0}}}
        skel = Seq(lambda v: v)
        assert restore_estimates(skel, EstimatorRegistry(), snap) == 0

    def test_malformed_rejected(self):
        with pytest.raises(ReproError):
            restore_estimates(Seq(lambda v: v), EstimatorRegistry(), {"bogus": 1})

    def test_json_file_round_trip(self, tmp_path):
        src = make_program()
        reg = EstimatorRegistry()
        for muscle in src.muscles():
            reg.observe_time(muscle, 2.0)
        reg.observe_card(src.split, 3)
        path = tmp_path / "estimates.json"
        save_estimates(path, src, reg)
        data = json.loads(path.read_text())
        assert data["version"] == 1

        dst = make_program()
        reg2 = EstimatorRegistry()
        assert load_estimates(path, dst, reg2) == 4
        assert reg2.t(dst.merge) == pytest.approx(2.0)
