"""Integration tests: machine registry fed by real simulator event streams."""

import pytest

from repro import (
    DivideAndConquer,
    Execute,
    Map,
    Merge,
    Pipe,
    Seq,
    SimulatedPlatform,
    Split,
    While,
    run,
)
from repro.core.estimator import EstimatorRegistry
from repro.core.schedule import best_effort_schedule
from repro.core.statemachines import MachineRegistry
from repro.errors import StateMachineError
from repro.runtime.costmodel import ConstantCostModel


def run_with_registry(skel, value, parallelism=2, cost=1.0, extensions=False):
    estimators = EstimatorRegistry()
    machines = MachineRegistry(estimators, extensions=extensions)
    platform = SimulatedPlatform(
        parallelism=parallelism, cost_model=ConstantCostModel(cost)
    )
    platform.add_listener(machines)
    result = run(skel, value, platform)
    return machines, estimators, platform, result


class TestRouting:
    def test_root_machine_created(self):
        skel = Seq(lambda v: v)
        machines, _, _, _ = run_with_registry(skel, 0)
        assert len(machines.roots) == 1
        assert machines.roots[0].kind == "seq"
        assert machines.roots[0].finished

    def test_children_attach_to_parent(self):
        skel = Map(lambda v: [v, v, v], Seq(lambda v: v), sum)
        machines, _, _, _ = run_with_registry(skel, 0)
        root = machines.roots[0]
        assert len(root.children) == 3
        assert all(c.parent is root for c in root.children)

    def test_multiple_executions_multiple_roots(self):
        skel = Seq(lambda v: v)
        estimators = EstimatorRegistry()
        machines = MachineRegistry(estimators)
        platform = SimulatedPlatform()
        platform.add_listener(machines)
        run(skel, 1, platform)
        run(skel, 2, platform)
        assert len(machines.roots) == 2
        assert machines.unfinished_roots() == []

    def test_unsupported_kind_rejected_by_default(self):
        from repro import If

        skel = If(lambda v: True, Seq(lambda v: v), Seq(lambda v: v))
        with pytest.raises(StateMachineError):
            run_with_registry(skel, 0)

    def test_extensions_allow_if(self):
        from repro import If

        skel = If(lambda v: True, Seq(lambda v: "t"), Seq(lambda v: "f"))
        machines, _, _, result = run_with_registry(skel, 0, extensions=True)
        assert result == "t"
        assert machines.roots[0].finished

    def test_reset(self):
        skel = Seq(lambda v: v)
        machines, _, _, _ = run_with_registry(skel, 0)
        machines.reset()
        assert len(machines) == 0 and machines.roots == []


class TestEstimationFromRealRuns:
    def test_constant_costs_learned_exactly(self):
        fs = Split(lambda v: [v, v], name="fs")
        fe = Execute(lambda v: v, name="fe")
        fm = Merge(sum, name="fm")
        skel = Map(fs, Seq(fe), fm)
        machines, est, _, _ = run_with_registry(skel, 3, cost=2.0)
        assert est.t(fs) == pytest.approx(2.0)
        assert est.t(fe) == pytest.approx(2.0)
        assert est.t(fm) == pytest.approx(2.0)
        assert est.card(fs) == pytest.approx(2.0)

    def test_while_cardinality_learned(self):
        skel = While(lambda v: v < 3, Seq(lambda v: v + 1))
        machines, est, _, _ = run_with_registry(skel, 0)
        assert est.card(skel.condition) == pytest.approx(3.0)

    def test_dac_depth_learned(self):
        skel = DivideAndConquer(
            lambda v: v >= 4,
            Split(lambda v: [v // 2, v // 2], name="fs"),
            Seq(lambda v: v),
            Merge(sum, name="fm"),
        )
        machines, est, _, _ = run_with_registry(skel, 8)
        # 8 -> 4,4 -> 2,2,2,2 : two dividing levels.
        assert est.card(skel.condition) == pytest.approx(2.0)

    def test_pipe_stage_estimates(self):
        a = Execute(lambda v: v, name="a")
        b = Execute(lambda v: v, name="b")
        skel = Pipe(Seq(a), Seq(b))
        _, est, _, _ = run_with_registry(skel, 0, cost=1.5)
        assert est.t(a) == pytest.approx(1.5)
        assert est.t(b) == pytest.approx(1.5)


class TestProjectionConvergence:
    def test_finished_projection_matches_simulated_times(self):
        """After the run, the projected ADG is fully actual and its
        best-effort schedule reproduces the simulation's makespan."""
        fs = Split(lambda v: [v, v, v], name="fs")
        skel = Map(fs, Seq(Execute(lambda v: v, name="fe")), Merge(sum, name="fm"))
        machines, est, platform, _ = run_with_registry(skel, 0, parallelism=2)
        adg, _ = machines.project_roots(platform.now(), roots=machines.roots)
        assert all(a.finished for a in adg)
        schedule = best_effort_schedule(adg, platform.now())
        assert schedule.wct == pytest.approx(platform.now())

    def test_projection_during_run_counts_all_work(self):
        """Snapshot mid-run: the projected ADG always contains the full
        remaining structure (here: total activity count is invariant)."""
        fs = Split(lambda v: [v, v, v], name="fs")
        fe = Execute(lambda v: v, name="fe")
        fm = Merge(sum, name="fm")
        skel = Map(fs, Seq(fe), fm)

        estimators = EstimatorRegistry()
        # Warm start so projection works from the first event.
        estimators.time_estimator(fs).initialize(1.0)
        estimators.card_estimator(fs).initialize(3)
        estimators.time_estimator(fe).initialize(1.0)
        estimators.time_estimator(fm).initialize(1.0)
        machines = MachineRegistry(estimators)
        platform = SimulatedPlatform(parallelism=1, cost_model=ConstantCostModel(1.0))
        platform.add_listener(machines)

        sizes = []
        platform.bus.add_callback(
            lambda e: (
                sizes.append(len(machines.project_roots(platform.now())[0])),
                e.value,
            )[1]
        )
        run(skel, 0, platform)
        # split + 3 children + merge = 5 at every snapshot except the very
        # last event (map@a), where the root has just finished and no
        # unfinished work remains.
        assert sizes and all(s == 5 for s in sizes[:-1])
        assert sizes[-1] == 0
