"""Unit/integration tests for the autonomic controller (MAPE loop)."""

import pytest

from repro import (
    Execute,
    Map,
    Merge,
    Seq,
    SimulatedPlatform,
    Split,
)
from repro.core.controller import AutonomicController
from repro.core.persistence import snapshot_estimates
from repro.core.qos import QoS
from repro.errors import QoSError, StateMachineError
from repro.runtime.costmodel import TableCostModel


def two_level_app():
    """Small paper-style program: 3 branches x 4 executes."""
    fs1 = Split(lambda xs: [xs] * 3, name="fs1")
    fs2 = Split(lambda xs: [xs] * 4, name="fs2")
    fe = Execute(lambda xs: 1, name="fe")
    fm = Merge(lambda rs: sum(rs), name="fm")
    skel = Map(fs1, Map(fs2, Seq(fe), fm), fm)
    costs = TableCostModel({fs1: 4.0, fs2: 1.0, fe: 0.5, fm: 0.25})
    return skel, costs


def autonomic_run(goal, skel=None, costs=None, snapshot=None, **ctrl_kw):
    if skel is None:
        skel, costs = two_level_app()
    platform = SimulatedPlatform(parallelism=1, cost_model=costs, max_parallelism=16)
    controller = AutonomicController(
        platform, skel, qos=QoS.wall_clock(goal, max_lp=16), **ctrl_kw
    )
    if snapshot is not None:
        controller.initialize_estimates(skel, snapshot)
    result = skel.compute([1], platform=platform)
    return platform, controller, result


class TestConstruction:
    def test_requires_qos(self):
        with pytest.raises(QoSError):
            AutonomicController(SimulatedPlatform(), qos=None)

    def test_rejects_unknown_policies(self):
        with pytest.raises(QoSError):
            AutonomicController(
                SimulatedPlatform(), qos=QoS.wall_clock(1), increase_policy="warp"
            )
        with pytest.raises(QoSError):
            AutonomicController(
                SimulatedPlatform(), qos=QoS.wall_clock(1), decrease_policy="never"
            )

    def test_validates_unsupported_skeletons(self):
        from repro import If

        skel = If(lambda v: True, Seq(lambda v: v), Seq(lambda v: v))
        with pytest.raises(StateMachineError):
            AutonomicController(SimulatedPlatform(), skel, qos=QoS.wall_clock(1))

    def test_extensions_permit_if(self):
        from repro import If

        skel = If(lambda v: True, Seq(lambda v: v), Seq(lambda v: v))
        AutonomicController(
            SimulatedPlatform(), skel, qos=QoS.wall_clock(1), extensions=True
        )

    def test_detach(self):
        platform = SimulatedPlatform()
        ctrl = AutonomicController(platform, qos=QoS.wall_clock(1))
        assert ctrl in platform.bus.listeners()
        ctrl.detach()
        assert ctrl not in platform.bus.listeners()


class TestSelfOptimization:
    def test_increases_lp_to_meet_goal(self):
        # Sequential: 4 + 3*(1 + 4*0.5 + 0.25) + 0.25 = 14.0
        platform, ctrl, _ = autonomic_run(goal=10.0)
        assert platform.now() <= 10.0 + 1e-9
        assert any(d.action == "increase" for d in ctrl.decisions)
        assert platform.metrics.peak_active() > 1

    def test_no_increase_when_goal_loose(self):
        platform, ctrl, _ = autonomic_run(goal=30.0)
        assert platform.metrics.peak_active() == 1
        assert not any(d.action == "increase" and d.changed for d in ctrl.decisions)

    def test_cold_start_waits_for_first_merge(self):
        platform, ctrl, _ = autonomic_run(goal=10.0)
        first = ctrl.decisions[0]
        # first analysis only after every muscle observed once: first
        # branch finishes at 4 + 1 + 4*0.5 + 0.25 = 7.25.
        assert first.time == pytest.approx(7.25)

    def test_warm_start_reacts_at_first_event(self):
        _, cold_ctrl, _ = autonomic_run(goal=30.0)
        skel, costs = two_level_app()
        snapshot_src, _ = two_level_app()
        # snapshot from the cold run maps onto the fresh skeleton
        snapshot = snapshot_estimates(cold_ctrl.machines.roots[0].skel,
                                      cold_ctrl.estimators)
        platform, ctrl, _ = autonomic_run(
            goal=10.0, skel=skel, costs=costs, snapshot=snapshot
        )
        # The outer split runs [0, 4]; with warm estimates the first
        # increase decision lands right at its completion.
        first_inc = ctrl.first_increase()
        assert first_inc is not None
        assert first_inc.time == pytest.approx(4.0)

    def test_goal_met_with_lp_goal_cap(self):
        skel, costs = two_level_app()
        platform = SimulatedPlatform(parallelism=1, cost_model=costs,
                                     max_parallelism=16)
        ctrl = AutonomicController(
            platform, skel, qos=QoS.wall_clock(10.0, max_lp=2)
        )
        skel.compute([1], platform=platform)
        assert max((d.lp_after for d in ctrl.decisions), default=1) <= 2

    def test_unreachable_goal_uses_best_effort_cap(self):
        platform, ctrl, _ = autonomic_run(goal=4.5)
        # Impossible (first split alone takes 4 of the 4.5): controller
        # should still push LP up to the optimal/bounded value and flag
        # unreachable at some point.
        assert any(d.action in ("unreachable", "increase") for d in ctrl.decisions)

    def test_decrease_halves(self):
        # Force an over-allocation, then watch the halving decrease.
        skel, costs = two_level_app()
        platform = SimulatedPlatform(parallelism=12, cost_model=costs,
                                     max_parallelism=16)
        ctrl = AutonomicController(platform, skel, qos=QoS.wall_clock(28.0, max_lp=16))
        skel.compute([1], platform=platform)
        decreases = [d for d in ctrl.decisions if d.action == "decrease" and d.changed]
        assert decreases
        assert decreases[0].lp_after == decreases[0].lp_before // 2

    def test_decrease_policy_none(self):
        skel, costs = two_level_app()
        platform = SimulatedPlatform(parallelism=12, cost_model=costs,
                                     max_parallelism=16)
        ctrl = AutonomicController(
            platform, skel, qos=QoS.wall_clock(28.0, max_lp=16),
            decrease_policy="none",
        )
        skel.compute([1], platform=platform)
        assert not any(d.action == "decrease" for d in ctrl.decisions)

    def test_optimal_policy_jumps_higher_than_minimal(self):
        _, minimal, _ = autonomic_run(goal=10.0, increase_policy="minimal")
        _, optimal, _ = autonomic_run(goal=10.0, increase_policy="optimal")
        max_min = max(d.lp_after for d in minimal.decisions)
        max_opt = max(d.lp_after for d in optimal.decisions)
        assert max_opt >= max_min

    def test_min_analysis_interval_throttles(self):
        _, every, _ = autonomic_run(goal=10.0)
        _, throttled, _ = autonomic_run(goal=10.0, min_analysis_interval=1.0)
        assert len(throttled.decisions) < len(every.decisions)


class TestDecisionLog:
    def test_summary_fields(self):
        _, ctrl, _ = autonomic_run(goal=10.0)
        summary = ctrl.summary()
        assert summary["analyses"] == len(ctrl.decisions)
        assert summary["increases"] >= 1
        assert summary["first_increase_time"] is not None

    def test_decisions_carry_estimates(self):
        _, ctrl, _ = autonomic_run(goal=10.0)
        d = ctrl.decisions[0]
        assert d.wct_best_effort <= d.wct_current_lp + 1e-9
        assert d.deadline == pytest.approx(10.0)
        assert d.optimal_lp >= 1

    def test_functional_result_unaffected(self):
        _, _, result = autonomic_run(goal=10.0)
        assert result == 12  # 3 branches x 4 executes x 1
