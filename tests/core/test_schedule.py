"""Unit tests for the WCT/LP schedulers — including the paper's Figure 1/2
worked example."""

import pytest

from repro.bench import FIG1_NOW, PAPER_FIG1_EXPECTED, build_figure1_adg
from repro.core.adg import ADG
from repro.core.schedule import (
    best_effort_schedule,
    concurrency_timeline,
    exact_minimal_lp,
    limited_lp_schedule,
    minimal_lp_greedy,
    optimal_lp,
    peak_concurrency,
)
from repro.errors import SchedulingError


def fan(n, dur=1.0, with_join=True):
    """source -> n parallel activities -> (optional) join."""
    adg = ADG()
    src = adg.add("src", dur)
    mids = [adg.add(f"m{i}", dur, [src]) for i in range(n)]
    if with_join:
        adg.add("join", dur, mids)
    return adg


class TestBestEffort:
    def test_chain(self):
        adg = ADG()
        a = adg.add("a", 2)
        adg.add("b", 3, [a])
        assert best_effort_schedule(adg, 0.0).wct == 5.0

    def test_fan_runs_parallel(self):
        result = best_effort_schedule(fan(5), 0.0)
        assert result.wct == 3.0  # src + parallel + join
        assert result.peak() == 5

    def test_clamps_to_now(self):
        adg = ADG()
        adg.add("late", 2.0)
        result = best_effort_schedule(adg, 10.0)
        assert result.start_of(0) == 10.0
        assert result.wct == 12.0

    def test_running_activity_clamped_forward(self):
        adg = ADG()
        adg.add("r", 2.0, start=0.0)  # should have ended at 2; now is 5
        result = best_effort_schedule(adg, 5.0)
        assert result.end_of(0) == 5.0

    def test_finished_pinned(self):
        adg = ADG()
        adg.add("f", 2.0, start=0.0, end=1.5)
        result = best_effort_schedule(adg, 5.0)
        assert result.end_of(0) == 1.5


class TestLimitedLP:
    def test_serializes_under_lp1(self):
        result = limited_lp_schedule(fan(4), 0.0, 1)
        assert result.wct == 6.0  # 1 + 4 + 1

    def test_lp_equals_width_matches_best_effort(self):
        adg = fan(4)
        assert limited_lp_schedule(adg, 0.0, 4).wct == best_effort_schedule(adg, 0.0).wct

    def test_rejects_zero_lp(self):
        with pytest.raises(SchedulingError):
            limited_lp_schedule(fan(2), 0.0, 0)

    def test_rejects_bad_priority(self):
        with pytest.raises(SchedulingError):
            limited_lp_schedule(fan(2), 0.0, 1, priority="magic")

    def test_running_occupies_worker(self):
        adg = ADG()
        adg.add("running", 5.0, start=0.0)  # busy until 5
        adg.add("pending", 1.0)
        result = limited_lp_schedule(adg, 1.0, 1)
        # single worker is taken until 5, so pending runs [5, 6]
        assert result.start_of(1) == 5.0
        assert result.wct == 6.0

    def test_more_running_than_lp_allowed(self):
        # After a decrease, 3 activities may be running under LP 2.
        adg = ADG()
        for _ in range(3):
            adg.add("r", 4.0, start=0.0)
        adg.add("p", 1.0)
        result = limited_lp_schedule(adg, 1.0, 2)
        assert result.start_of(3) == 4.0  # waits for capacity within LP

    def test_critical_path_priority_beats_fifo_here(self):
        # Long chain released last: critical-path priority starts it first.
        adg = ADG()
        short = [adg.add(f"s{i}", 1.0) for i in range(2)]
        long_head = adg.add("L0", 1.0)
        adg.add("L1", 10.0, [long_head])
        cp = limited_lp_schedule(adg, 0.0, 1, priority="critical-path")
        fifo = limited_lp_schedule(adg, 0.0, 1, priority="fifo")
        assert cp.wct <= fifo.wct
        assert cp.start_of(long_head) == 0.0

    def test_zero_duration_activities(self):
        adg = ADG()
        a = adg.add("z", 0.0)
        b = adg.add("w", 1.0, [a])
        result = limited_lp_schedule(adg, 0.0, 1)
        assert result.wct == 1.0


class TestOptimalLP:
    def test_fan_width(self):
        assert optimal_lp(fan(7), 0.0) == 7

    def test_chain_is_one(self):
        adg = ADG()
        a = adg.add("a", 1)
        adg.add("b", 1, [a])
        assert optimal_lp(adg, 0.0) == 1

    def test_counts_only_future(self):
        adg = ADG()
        # Historical burst of 5 parallel activities, all finished.
        for _ in range(5):
            adg.add("h", 1.0, start=0.0, end=1.0)
        adg.add("tail", 1.0)
        assert optimal_lp(adg, 2.0) == 1


class TestMinimalLP:
    def test_finds_smallest(self):
        adg = fan(6)
        # 1 + ceil(6/k) + 1 <= 5  =>  k >= 2
        found = minimal_lp_greedy(adg, 0.0, deadline=5.0)
        assert found is not None
        assert found[0] == 2

    def test_respects_max_lp(self):
        assert minimal_lp_greedy(fan(6), 0.0, deadline=3.0, max_lp=2) is None

    def test_unreachable_returns_none(self):
        adg = ADG()
        adg.add("long", 100.0)
        assert minimal_lp_greedy(adg, 0.0, deadline=1.0) is None

    def test_start_lp_floor(self):
        found = minimal_lp_greedy(fan(6), 0.0, deadline=8.0, start_lp=3)
        assert found is not None
        assert found[0] >= 3


class TestExactMinimal:
    def test_matches_greedy_on_fan(self):
        adg = fan(5)
        greedy = minimal_lp_greedy(adg, 0.0, deadline=4.0)
        exact = exact_minimal_lp(adg, 0.0, deadline=4.0)
        assert greedy is not None and exact is not None
        assert exact <= greedy[0]

    def test_exact_respects_deadline(self):
        adg = fan(4)
        k = exact_minimal_lp(adg, 0.0, deadline=4.0)
        assert k is not None
        assert limited_lp_schedule(adg, 0.0, k).wct <= 4.0 + 1e-9

    def test_unreachable(self):
        adg = ADG()
        adg.add("long", 100.0)
        assert exact_minimal_lp(adg, 0.0, deadline=1.0) is None

    def test_size_guard(self):
        with pytest.raises(SchedulingError):
            exact_minimal_lp(fan(40), 0.0, deadline=10.0)


class TestTimelineHelpers:
    def test_concurrency_timeline(self):
        steps = concurrency_timeline([(0, 2), (1, 3), (2, 4)])
        assert steps == [(0, 1), (1, 2), (2, 2), (3, 1), (4, 0)]

    def test_zero_length_ignored(self):
        assert concurrency_timeline([(1, 1)]) == []

    def test_peak(self):
        assert peak_concurrency([(0, 1), (1, 5), (2, 0)]) == 5
        assert peak_concurrency([]) == 0

    def test_crop_from_time(self):
        steps = concurrency_timeline([(0, 10)], from_time=5.0)
        assert steps[0] == (5.0, 1)


class TestPaperWorkedExample:
    """The paper's Figure 1 / Figure 2 numbers, end to end."""

    def setup_method(self):
        self.adg, self.index = build_figure1_adg()

    def test_best_effort_wct_is_100(self):
        be = best_effort_schedule(self.adg, FIG1_NOW)
        assert be.wct == PAPER_FIG1_EXPECTED["best_effort_wct"]

    def test_optimal_lp_is_3(self):
        assert optimal_lp(self.adg, FIG1_NOW) == PAPER_FIG1_EXPECTED["optimal_lp"]

    def test_limited_lp2_wct_is_115(self):
        l2 = limited_lp_schedule(self.adg, FIG1_NOW, 2)
        assert l2.wct == PAPER_FIG1_EXPECTED["limited_lp2_wct"]

    def test_goal_100_increases_to_3(self):
        found = minimal_lp_greedy(
            self.adg, FIG1_NOW, PAPER_FIG1_EXPECTED["wct_goal"]
        )
        assert found is not None
        assert found[0] == PAPER_FIG1_EXPECTED["lp_increase_to"]

    def test_m3_executes_estimated_75_90(self):
        be = best_effort_schedule(self.adg, FIG1_NOW)
        for aid in self.index["fe_3"]:
            assert be.start_of(aid) == 75.0
            assert be.end_of(aid) == 90.0

    def test_limited_peak_never_exceeds_two_in_future(self):
        l2 = limited_lp_schedule(self.adg, FIG1_NOW, 2)
        assert l2.peak(from_time=FIG1_NOW) <= 2

    def test_best_effort_timeline_peaks_in_75_90(self):
        be = best_effort_schedule(self.adg, FIG1_NOW)
        steps = be.timeline(from_time=FIG1_NOW)
        at_peak = [t for t, lvl in steps if lvl == 3]
        assert at_peak and min(at_peak) == 75.0
