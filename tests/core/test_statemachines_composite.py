"""Tests for the composite and extension machines (Farm, Pipe, If, Fork),
driven by real simulator event streams."""

import pytest

from repro import (
    Execute,
    Farm,
    Fork,
    If,
    Merge,
    Pipe,
    Seq,
    SimulatedPlatform,
    Split,
    run,
)
from repro.core.estimator import EstimatorRegistry
from repro.core.schedule import best_effort_schedule
from repro.core.statemachines import (
    FarmMachine,
    ForkMachine,
    IfMachine,
    MachineRegistry,
    PipeMachine,
)
from repro.runtime.costmodel import ConstantCostModel


def run_tracked(skel, value, cost=1.0, parallelism=2):
    estimators = EstimatorRegistry()
    machines = MachineRegistry(estimators, extensions=True)
    platform = SimulatedPlatform(
        parallelism=parallelism, cost_model=ConstantCostModel(cost)
    )
    platform.add_listener(machines)
    result = run(skel, value, platform)
    return machines, estimators, platform, result


class TestFarmMachine:
    def test_wraps_child(self):
        machines, _, platform, _ = run_tracked(Farm(Seq(lambda v: v)), 0)
        root = machines.roots[0]
        assert isinstance(root, FarmMachine)
        assert len(root.children) == 1

    def test_projection_after_finish_is_actual(self):
        machines, _, platform, _ = run_tracked(Farm(Seq(lambda v: v)), 0)
        adg, _ = machines.project_roots(platform.now(), roots=machines.roots)
        assert len(adg) == 1
        assert all(a.finished for a in adg)


class TestPipeMachine:
    def test_stage_order(self):
        a = Execute(lambda v: v + 1, name="stage-a")
        b = Execute(lambda v: v * 2, name="stage-b")
        machines, _, platform, result = run_tracked(Pipe(Seq(a), Seq(b)), 1)
        assert result == 4
        root = machines.roots[0]
        assert isinstance(root, PipeMachine)
        adg, _ = machines.project_roots(platform.now(), roots=machines.roots)
        names = [act.name for act in adg.activities]
        assert names == ["stage-a", "stage-b"]
        # chained dependency
        assert adg.activities[1].preds == (0,)

    def test_partial_pipe_projection(self):
        """Mid-run, unstarted stages come from structural projection."""
        a = Execute(lambda v: v, name="a")
        b = Execute(lambda v: v, name="b")
        skel = Pipe(Seq(a), Seq(b))
        estimators = EstimatorRegistry()
        estimators.time_estimator(a).initialize(1.0)
        estimators.time_estimator(b).initialize(1.0)
        machines = MachineRegistry(estimators)
        platform = SimulatedPlatform(parallelism=1, cost_model=ConstantCostModel(1.0))
        platform.add_listener(machines)
        sizes = []
        platform.bus.add_callback(
            lambda e: (
                sizes.append(
                    len(machines.project_roots(platform.now())[0])
                    if machines.unfinished_roots()
                    else 0
                ),
                e.value,
            )[1]
        )
        run(skel, 0, platform)
        assert all(s == 2 for s in sizes[:-1])


class TestIfMachine:
    def test_taken_branch_tracked(self):
        skel = If(
            lambda v: v > 0,
            Seq(Execute(lambda v: "pos", name="pos")),
            Seq(Execute(lambda v: "neg", name="neg")),
        )
        machines, est, platform, result = run_tracked(skel, 5)
        assert result == "pos"
        root = machines.roots[0]
        assert isinstance(root, IfMachine)
        assert root.cond_span.result is True
        adg, _ = machines.project_roots(platform.now(), roots=machines.roots)
        assert [a.name for a in adg.activities if a.role == "execute"] == [
            machines.roots[0].skel.true_skel.execute.name
        ]

    def test_condition_time_estimated(self):
        skel = If(lambda v: True, Seq(lambda v: v), Seq(lambda v: v))
        machines, est, _, _ = run_tracked(skel, 0, cost=2.0)
        assert est.t(skel.condition) == pytest.approx(2.0)


class TestForkMachine:
    def test_branch_assignment_by_skeleton(self):
        left = Seq(Execute(lambda v: v + 1, name="left"))
        right = Seq(Execute(lambda v: v * 10, name="right"))
        skel = Fork(
            Split(lambda v: [v, v], name="fs"), [left, right], Merge(list, name="fm")
        )
        machines, est, platform, result = run_tracked(skel, 3)
        assert result == [4, 30]
        root = machines.roots[0]
        assert isinstance(root, ForkMachine)
        adg, _ = machines.project_roots(platform.now(), roots=machines.roots)
        execute_names = {a.name for a in adg.activities if a.role == "execute"}
        assert execute_names == {left.execute.name, right.execute.name}

    def test_split_card_observed(self):
        skel = Fork(
            Split(lambda v: [v, v], name="fs"),
            [Seq(lambda v: v), Seq(lambda v: v)],
            Merge(list, name="fm"),
        )
        machines, est, _, _ = run_tracked(skel, 0)
        assert est.card(skel.split) == pytest.approx(2.0)

    def test_projection_schedules_cleanly(self):
        skel = Fork(
            Split(lambda v: [v, v], name="fs"),
            [Seq(lambda v: v), Seq(lambda v: v)],
            Merge(list, name="fm"),
        )
        machines, _, platform, _ = run_tracked(skel, 0)
        adg, _ = machines.project_roots(platform.now(), roots=machines.roots)
        schedule = best_effort_schedule(adg, platform.now())
        assert schedule.wct == pytest.approx(platform.now())
