"""Unit tests for the Activity Dependency Graph."""

import pytest

from repro.core.adg import ADG
from repro.errors import ADGError


def chain(durations):
    adg = ADG()
    prev = []
    for i, d in enumerate(durations):
        prev = [adg.add(f"a{i}", d, prev)]
    return adg


class TestConstruction:
    def test_ids_sequential(self):
        adg = ADG()
        assert adg.add("x", 1.0) == 0
        assert adg.add("y", 1.0) == 1

    def test_missing_pred_rejected(self):
        adg = ADG()
        with pytest.raises(ADGError):
            adg.add("x", 1.0, [5])

    def test_negative_duration_rejected(self):
        with pytest.raises(ADGError):
            ADG().add("x", -1.0)

    def test_end_without_start_rejected(self):
        with pytest.raises(ADGError):
            ADG().add("x", 1.0, start=None, end=5.0)

    def test_end_before_start_rejected(self):
        with pytest.raises(ADGError):
            ADG().add("x", 1.0, start=5.0, end=4.0)

    def test_len_and_iter(self):
        adg = chain([1, 1, 1])
        assert len(adg) == 3
        assert [a.name for a in adg] == ["a0", "a1", "a2"]


class TestQueries:
    def test_sources_terminals(self):
        adg = ADG()
        a = adg.add("a", 1)
        b = adg.add("b", 1)
        c = adg.add("c", 1, [a, b])
        assert set(adg.sources()) == {a, b}
        assert adg.terminals() == [c]

    def test_successors_predecessors(self):
        adg = ADG()
        a = adg.add("a", 1)
        b = adg.add("b", 1, [a])
        assert adg.successors(a) == [b]
        assert adg.predecessors(b) == [a]

    def test_topological_order_is_id_order(self):
        adg = chain([1, 1, 1, 1])
        assert adg.topological_order() == [0, 1, 2, 3]

    def test_activity_lookup_error(self):
        with pytest.raises(ADGError):
            chain([1]).activity(99)

    def test_status_classification(self):
        adg = ADG()
        done = adg.add("done", 1, start=0.0, end=1.0)
        running = adg.add("run", 1, start=1.0)
        pending = adg.add("pend", 1)
        assert adg.activity(done).status == "finished"
        assert adg.activity(running).status == "running"
        assert adg.activity(pending).status == "pending"
        assert adg.finished_count() == 1
        assert len(adg.running()) == 1
        assert len(adg.pending()) == 1


class TestAnalysis:
    def test_total_estimated_work_skips_finished(self):
        adg = ADG()
        adg.add("done", 5, start=0.0, end=5.0)
        adg.add("pend", 3)
        assert adg.total_estimated_work() == 3.0

    def test_critical_path(self):
        adg = ADG()
        a = adg.add("a", 2)
        b = adg.add("b", 3, [a])
        adg.add("c", 1, [a])
        assert adg.critical_path_length() == 5.0

    def test_critical_path_ignores_finished(self):
        adg = ADG()
        a = adg.add("a", 2, start=0.0, end=2.0)
        adg.add("b", 3, [a])
        assert adg.critical_path_length() == 3.0


class TestValidation:
    def test_valid_times_pass(self):
        adg = ADG()
        a = adg.add("a", 1, start=0.0, end=1.0)
        adg.add("b", 1, [a], start=1.0, end=2.0)
        adg.validate()

    def test_start_before_pred_end_rejected(self):
        adg = ADG()
        a = adg.add("a", 1, start=0.0, end=5.0)
        adg.add("b", 1, [a], start=3.0, end=6.0)
        with pytest.raises(ADGError):
            adg.validate()

    def test_started_with_unfinished_pred_rejected(self):
        adg = ADG()
        a = adg.add("a", 1, start=0.0)  # running
        adg.add("b", 1, [a], start=2.0)
        with pytest.raises(ADGError):
            adg.validate()
