"""Unit tests of the LP arbiter's EEDF allocation.

Stub analyzers return hand-built :class:`AnalysisReport` objects over
small ADGs, so the allocation policy is tested in isolation from any
platform timing.
"""

import pytest

from repro.core.adg import ADG
from repro.core.analysis import AnalysisReport
from repro.runtime.clock import VirtualClock
from repro.runtime.platform import Platform
from repro.service import LPArbiter


def pending_fanout_adg(width, duration):
    """*width* independent pending activities of *duration* seconds."""
    adg = ADG()
    for i in range(width):
        adg.add(f"leaf{i}", duration)
    return adg


class StubAnalyzer:
    """Duck-typed ExecutionAnalyzer: returns a canned report (or None)."""

    def __init__(
        self, execution_id, deadline=None, width=4, duration=1.0, cold=False, qos=None
    ):
        self.execution_id = execution_id
        self.qos = qos
        self._cold = cold
        self._deadline = deadline
        self._width = width
        self._duration = duration

    def analyze(self, now, current_lp=None, roots=None):
        if self._cold:
            return None
        adg = pending_fanout_adg(self._width, self._duration)
        from repro.core.schedule import best_effort_schedule

        best = best_effort_schedule(adg, now)
        return AnalysisReport(
            time=now,
            execution_id=self.execution_id,
            deadline=self._deadline,
            current_lp=current_lp,
            wct_best_effort=best.wct,
            wct_current_lp=None,
            optimal_lp=best.peak(from_time=now),
            adg=adg,
        )


def make_platform(capacity=8):
    return Platform(parallelism=1, max_parallelism=capacity, clock=VirtualClock())


class TestAllocation:
    def test_cold_executions_soak_up_idle_budget(self):
        # LP-1 cold start is a floor, not a ceiling: with nothing warm
        # to serve, the idle budget spreads across the cold executions.
        platform = make_platform()
        arbiter = LPArbiter(platform, capacity=8)
        outcome = arbiter.rebalance(
            0.0, {1: StubAnalyzer(1, cold=True), 2: StubAnalyzer(2, cold=True)}
        )
        assert outcome.shares == {1: 4, 2: 4}
        assert outcome.cold == (1, 2)
        assert platform.get_shares() == {1: 4, 2: 4}

    def test_cold_executions_never_displace_warm_deadlines(self):
        platform = make_platform(capacity=6)
        arbiter = LPArbiter(platform, capacity=6)
        outcome = arbiter.rebalance(
            0.0,
            {
                1: StubAnalyzer(1, deadline=1.2, width=4, duration=1.0),
                2: StubAnalyzer(2, cold=True),
            },
        )
        # The urgent warm execution gets its minimal LP (4) before the
        # cold one receives anything beyond its floor.
        assert outcome.shares[1] == 4
        assert outcome.shares[2] == 2  # floor 1 + the single idle worker
        assert sum(outcome.shares.values()) <= 6

    def test_urgent_deadline_granted_minimal_lp_first(self):
        platform = make_platform(capacity=6)
        arbiter = LPArbiter(platform, capacity=6)
        # Four 1s leaves each.  Tight deadline (1.2s away) needs LP 4;
        # loose deadline (4.5s away) needs LP 1.
        analyzers = {
            1: StubAnalyzer(1, deadline=4.5, width=4, duration=1.0),
            2: StubAnalyzer(2, deadline=1.2, width=4, duration=1.0),
        }
        outcome = arbiter.rebalance(0.0, analyzers)
        assert outcome.shares[2] == 4  # urgent first, minimal LP meeting 1.2s
        assert outcome.shares[1] >= 1
        assert outcome.infeasible == ()
        assert sum(outcome.shares.values()) <= 6

    def test_infeasible_goal_flagged_and_granted_best_effort(self):
        platform = make_platform(capacity=3)
        arbiter = LPArbiter(platform, capacity=3)
        # 4 x 1s leaves, deadline in 0.5s: not even LP 4 would meet it,
        # and only 3 workers exist anyway.
        analyzers = {7: StubAnalyzer(7, deadline=0.5, width=4, duration=1.0)}
        outcome = arbiter.rebalance(0.0, analyzers)
        assert outcome.infeasible == (7,)
        assert outcome.shares[7] == 3  # best-effort peak clamped to budget

    def test_leftover_budget_tops_up_to_optimal_lp(self):
        platform = make_platform(capacity=10)
        arbiter = LPArbiter(platform, capacity=10)
        # Each needs only LP 1 for its loose goal; optimal LP is 4.
        analyzers = {
            1: StubAnalyzer(1, deadline=100.0, width=4, duration=1.0),
            2: StubAnalyzer(2, deadline=200.0, width=4, duration=1.0),
        }
        outcome = arbiter.rebalance(0.0, analyzers)
        # Leftovers flow in urgency order, capped at the optimal LP of 4.
        assert outcome.shares[1] == 4
        assert outcome.shares[2] == 4
        assert outcome.total_lp == 8

    def test_everyone_keeps_a_worker_under_pressure(self):
        platform = make_platform(capacity=3)
        arbiter = LPArbiter(platform, capacity=3)
        analyzers = {
            i: StubAnalyzer(i, deadline=0.1 * i, width=4, duration=1.0)
            for i in range(1, 6)
        }
        outcome = arbiter.rebalance(0.0, analyzers)
        assert set(outcome.shares) == set(analyzers)
        assert all(s >= 1 for s in outcome.shares.values())
        assert outcome.total_lp <= 3

    def test_tenant_max_lp_goal_caps_the_grant(self):
        from repro import QoS

        platform = make_platform(capacity=10)
        arbiter = LPArbiter(platform, capacity=10)
        # Loose deadline, optimal LP 4, but the tenant capped itself at 2
        # ("never allocate more than N threads") — the top-up must stop
        # there even though the pool is idle.
        analyzers = {
            1: StubAnalyzer(
                1, deadline=100.0, width=4, duration=1.0,
                qos=QoS.wall_clock(100.0, max_lp=2),
            )
        }
        outcome = arbiter.rebalance(0.0, analyzers)
        assert outcome.shares[1] == 2

    def test_tenant_max_lp_goal_caps_cold_spread(self):
        from repro import QoS

        platform = make_platform(capacity=8)
        arbiter = LPArbiter(platform, capacity=8)
        analyzers = {
            1: StubAnalyzer(1, cold=True, qos=QoS.wall_clock(100.0, max_lp=3)),
            2: StubAnalyzer(2, cold=True),
        }
        outcome = arbiter.rebalance(0.0, analyzers)
        assert outcome.shares[1] == 3  # capped by its MaxLPGoal
        assert outcome.shares[2] == 5  # soaks up the rest

    def test_best_effort_tenants_arbitrate_after_deadlines(self):
        platform = make_platform(capacity=5)
        arbiter = LPArbiter(platform, capacity=5)
        analyzers = {
            1: StubAnalyzer(1, deadline=None, width=4, duration=1.0),
            2: StubAnalyzer(2, deadline=1.2, width=4, duration=1.0),
        }
        outcome = arbiter.rebalance(0.0, analyzers)
        assert outcome.shares[2] == 4  # deadline-bound first
        assert outcome.shares[1] == 1  # best-effort floor


class TestMechanics:
    def test_requires_budget(self):
        platform = Platform(parallelism=1, clock=VirtualClock())
        with pytest.raises(ValueError, match="budget"):
            LPArbiter(platform)

    def test_capacity_defaults_to_platform_max(self):
        platform = make_platform(capacity=6)
        assert LPArbiter(platform).capacity == 6

    def test_throttle_skips_close_rebalances(self):
        platform = make_platform()
        arbiter = LPArbiter(platform, capacity=8, min_interval=1.0)
        analyzers = {1: StubAnalyzer(1, cold=True)}
        assert arbiter.rebalance(0.0, analyzers) is not None
        assert arbiter.rebalance(0.5, analyzers) is None  # throttled
        assert arbiter.rebalance(0.5, analyzers, force=True) is not None
        assert arbiter.rebalance(2.0, analyzers) is not None

    def test_empty_live_set_clears_shares(self):
        platform = make_platform()
        arbiter = LPArbiter(platform, capacity=8)
        arbiter.rebalance(0.0, {1: StubAnalyzer(1, cold=True)})
        assert platform.get_shares() == {1: 8}  # lone cold exec: whole pool
        assert arbiter.rebalance(1.0, {}) is None
        assert platform.get_shares() == {}

    def test_shares_history_tracks_one_execution(self):
        platform = make_platform()
        arbiter = LPArbiter(platform, capacity=8)
        arbiter.rebalance(0.0, {1: StubAnalyzer(1, cold=True)})
        arbiter.rebalance(
            1.0, {1: StubAnalyzer(1, deadline=100.0, width=4, duration=1.0)}
        )
        history = arbiter.shares_history(1)
        # Cold floor + idle budget first, then the warm optimal LP.
        assert history[0] == 8 and history[-1] == 4

    def test_history_window_is_bounded(self):
        platform = make_platform()
        arbiter = LPArbiter(platform, capacity=8, history=4)
        for i in range(10):
            arbiter.rebalance(float(i), {1: StubAnalyzer(1, cold=True)})
        assert len(arbiter.rebalances) == 4
        assert arbiter.last_rebalance.time == 9.0
