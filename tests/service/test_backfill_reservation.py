"""Backfill reservation: a held wide goal cannot be starved by a stream
of small feasible goals (ROADMAP item).

Load-aware admission holds a goal that only fits an idle machine.  Before
the reservation, admission consulted only *live* commitments, so every
later small-goal submission that fit the leftover budget (and the
one-worker floor guarantees the tiniest always did) kept being admitted —
each one re-extending the load that held the wide goal.  Now the held
queue head's admission-time minimal LP is reserved against later
same-or-lower-priority submissions: they queue up *behind* the wide goal
instead of backfilling past it.

Durations are structural: every assertion is on admission decisions and
ordering, which machine load cannot flip.
"""

import pytest

from repro import Priority, QoS, SkeletonService
from repro.core.analysis import ExecutionAnalyzer
from repro.service import ExecutionStatus
from repro.service.admission import AdmissionController
from tests.conftest import sleepy_map_program, sleepy_map_snapshot

pytestmark = [pytest.mark.integration, pytest.mark.service_stress]

CAPACITY = 4
HOG = dict(width=8, leaf=0.15)  # commits all 4 workers for its 0.4s goal
WIDE = dict(width=4, leaf=0.15)  # needs all 4 workers for its 0.28s goal
SMALL = dict(width=1, leaf=0.05)  # needs 1 worker for its loose 5s goal


def submit_map(service, tenant, width, leaf, value=1, qos=None):
    program = sleepy_map_program(width, leaf)
    return service.submit(
        program,
        value,
        qos=qos,
        tenant=tenant,
        warm_start=sleepy_map_snapshot(program, width, leaf),
    )


def make_service(**kwargs):
    kwargs.setdefault("backend", "threads")
    kwargs.setdefault("capacity", CAPACITY)
    kwargs.setdefault("min_rebalance_interval", 0.0)
    return SkeletonService(**kwargs)


class TestBackfillReservation:
    def test_small_goals_queue_behind_a_held_wide_goal(self):
        """The regression scenario: hog commits the pool, the wide goal is
        load-held and reserves its minimal LP, and the small-goal stream
        is held behind it instead of backfilling past."""
        with make_service() as service:
            hog = submit_map(service, "hog", qos=QoS.wall_clock(0.4), **HOG)
            wide = submit_map(
                service, "wide", value=2, qos=QoS.wall_clock(0.28), **WIDE
            )
            assert wide.status() is ExecutionStatus.QUEUED
            smalls = [
                submit_map(
                    service, f"small{i}", value=3, qos=QoS.wall_clock(5.0), **SMALL
                )
                for i in range(3)
            ]
            # Every small goal is feasible right now (1 worker always
            # squeezes in), yet all are held behind the wide goal.
            assert [h.status() for h in smalls] == [ExecutionStatus.QUEUED] * 3
            assert service.held_count == 4

            # Drain: the wide goal launches before any small one.
            assert hog.result(timeout=30.0) == 8
            assert wide.result(timeout=30.0) == 8
            for handle in smalls:
                assert handle.result(timeout=30.0) == 3
            assert wide.started_at is not None
            assert all(wide.started_at <= h.started_at for h in smalls)
            # Held, not missed: the wide goal is met after the drain.
            assert wide.goal_met() is True
            assert service.stats.tenant("wide").goals_missed == 0

    def test_flag_off_restores_backfilling(self):
        """``backfill_reservation=False`` reproduces the pre-reservation
        behaviour: small goals are admitted straight past the held head."""
        with make_service(backfill_reservation=False) as service:
            hog = submit_map(service, "hog", qos=QoS.wall_clock(0.4), **HOG)
            wide = submit_map(
                service, "wide", value=2, qos=QoS.wall_clock(0.28), **WIDE
            )
            assert wide.status() is ExecutionStatus.QUEUED
            small = submit_map(
                service, "small", value=3, qos=QoS.wall_clock(5.0), **SMALL
            )
            assert small.status() is ExecutionStatus.RUNNING
            assert service.held_count == 1
            assert hog.result(timeout=30.0) == 8
            assert wide.result(timeout=30.0) == 8
            assert small.result(timeout=30.0) == 3

    def test_higher_priority_submissions_pass_the_reservation(self):
        """The reservation binds same-or-lower classes only: a HIGH-class
        small goal is admitted past a NORMAL-class held head (it would
        preempt that class's grants anyway)."""
        with make_service() as service:
            hog = submit_map(service, "hog", qos=QoS.wall_clock(0.4), **HOG)
            wide = submit_map(
                service, "wide", value=2, qos=QoS.wall_clock(0.28), **WIDE
            )
            assert wide.status() is ExecutionStatus.QUEUED
            low = submit_map(
                service,
                "low",
                value=3,
                qos=QoS.wall_clock(5.0, priority=Priority.BATCH),
                **SMALL,
            )
            assert low.status() is ExecutionStatus.QUEUED  # lower: bound
            high = submit_map(
                service,
                "high",
                value=4,
                qos=QoS.wall_clock(5.0, priority=Priority.HIGH),
                **SMALL,
            )
            assert high.status() is ExecutionStatus.RUNNING  # higher: passes
            assert hog.result(timeout=30.0) == 8
            assert wide.result(timeout=30.0) == 8
            assert low.result(timeout=30.0) == 3
            assert high.result(timeout=30.0) == 4

    def test_goalless_submissions_are_not_gated(self):
        """Best-effort (no WCT goal) submissions never consulted the load
        gate, and the reservation does not change that."""
        with make_service() as service:
            hog = submit_map(service, "hog", qos=QoS.wall_clock(0.4), **HOG)
            wide = submit_map(
                service, "wide", value=2, qos=QoS.wall_clock(0.28), **WIDE
            )
            assert wide.status() is ExecutionStatus.QUEUED
            free = submit_map(service, "free", value=5, qos=None, **SMALL)
            assert free.status() is ExecutionStatus.RUNNING
            assert hog.result(timeout=30.0) == 8
            assert wide.result(timeout=30.0) == 8
            assert free.result(timeout=30.0) == 5

    def test_quota_blocked_head_stops_reserving(self):
        """A head that cannot start for quota reasons is not waiting for
        workers: its reservation is suspended, so later small goals are
        not held hostage to budget the head could not use anyway."""
        from repro.service import TenantQuota

        with make_service(quotas={"wide": TenantQuota(max_active=1)}) as service:
            hog = submit_map(
                service, "wide", qos=QoS.wall_clock(0.4), **HOG
            )
            # Same tenant, at its active quota AND load-infeasible: held,
            # with both blockers in force.
            wide = submit_map(
                service, "wide", value=2, qos=QoS.wall_clock(0.28), **WIDE
            )
            assert wide.status() is ExecutionStatus.QUEUED
            small = submit_map(
                service, "other", value=3, qos=QoS.wall_clock(5.0), **SMALL
            )
            # The quota, not the budget, holds the head: no reservation.
            assert small.status() is ExecutionStatus.RUNNING
            assert hog.result(timeout=30.0) == 8
            assert wide.result(timeout=30.0) == 8
            assert small.result(timeout=30.0) == 3

    def test_reservation_recorded_on_the_held_record(self):
        with make_service() as service:
            submit_map(service, "hog", qos=QoS.wall_clock(0.4), **HOG)
            wide = submit_map(
                service, "wide", value=2, qos=QoS.wall_clock(0.28), **WIDE
            )
            assert wide.status() is ExecutionStatus.QUEUED
            with service._lock:
                head = service._held[0]
                assert head.load_held
                # 4 x 0.15s leaves against a 0.28s goal: only LP 4 fits.
                assert head.reserved_lp == 4
            service.shutdown(wait=True, timeout=30.0)


class TestAdmissionReservedBlocker:
    """Controller-level contract of the reserved hard blocker."""

    def controller(self):
        return AdmissionController(capacity=CAPACITY)

    def warm_analyzer(self, width, leaf, qos):
        program = sleepy_map_program(width, leaf)
        analyzer = ExecutionAnalyzer(qos=qos, skeleton=program)
        analyzer.initialize_estimates(
            program, sleepy_map_snapshot(program, width, leaf)
        )
        return program, analyzer

    def test_reserved_budget_blocks_even_floor_feasible_goals(self):
        qos = QoS.wall_clock(5.0)
        program, analyzer = self.warm_analyzer(qos=qos, **SMALL)
        admission = self.controller()
        open_decision = admission.evaluate(
            program, qos, analyzer.estimators, "t", live_count=0,
            available_lp=0, engine=analyzer.plan,
        )
        assert open_decision.admitted  # floor-feasible on a busy machine
        reserved_decision = admission.evaluate(
            program, qos, analyzer.estimators, "t", live_count=0,
            available_lp=-4, engine=analyzer.plan, reserved=4,
        )
        assert reserved_decision.held
        assert reserved_decision.load_blocked
        assert "reserved" in reserved_decision.reason

    def test_reservation_for_matches_minimal_idle_lp(self):
        qos = QoS.wall_clock(0.28)
        _program, analyzer = self.warm_analyzer(qos=qos, **WIDE)
        admission = self.controller()
        assert admission.reservation_for(qos, analyzer.plan) == 4
        assert admission.reservation_for(None, analyzer.plan) is None
        assert admission.reservation_for(qos, None) is None
