"""QoS scheduling classes, live on the real service (threads + processes).

The arbiter-level properties are pinned by
``tests/service/test_arbiter_properties.py`` against stub analyzers; this
module locks the same contracts in end-to-end service runs on both real
backends:

* a higher-priority submission **preempts** running lower-class tenants
  at the very rebalance its admission forces (shares shrink mid-flight
  via ``Platform.set_shares``);
* **load-aware admission** holds a goal that plain EEDF would have
  admitted and missed, then launches it once the committed budget
  drains — and the goal is met;
* **fair-share weights** shape the surplus split between live tenants;
* the **async facade** (``await handle``, ``async for status``) delivers
  results, failures and lifecycle transitions on every backend;
* cancelled executions never count toward the **goal-miss rate**
  (regression for the ServiceStats accounting);
* **event-count rebalance throttling** bounds arbitration under muscle
  storms (deterministically shown on the simulator).

Durations are chosen so that the *scheduling* outcomes are structural:
sleeps can only overrun on a loaded CI machine, and every assertion is
on the side that overruns cannot flip.
"""

import asyncio

import pytest

from repro import Priority, QoS, SkeletonService
from repro.errors import AdmissionError, ExecutionCancelledError
from repro.service import ExecutionStatus, ServiceStats
from tests.conftest import sleepy_map_program, sleepy_map_snapshot

pytestmark = [pytest.mark.integration, pytest.mark.service_stress]

BACKENDS = ["threads", "processes"]


def submit_map(service, tenant, width, leaf, value=1, qos=None):
    program = sleepy_map_program(width, leaf)
    return service.submit(
        program,
        value,
        qos=qos,
        tenant=tenant,
        warm_start=sleepy_map_snapshot(program, width, leaf),
    )


# ---------------------------------------------------------------------------
# priority / preemption


class TestPreemption:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_urgent_submission_preempts_at_its_admit_rebalance(self, backend):
        """The acceptance scenario: preemption within one rebalance tick.

        A hog needs the whole 4-worker pool for its goal (12 x 0.15s
        leaves, 0.6s goal -> minimal LP 4).  An URGENT submission with a
        0.4s goal needs 2 workers; its admission forces a rebalance that
        must shrink the hog's grant mid-flight, priority over deadline
        order (the hog's deadline is earlier).
        """
        with SkeletonService(
            backend=backend, capacity=4, min_rebalance_interval=0.0
        ) as service:
            hog = submit_map(
                service, "hog", width=12, leaf=0.15, qos=QoS.wall_clock(0.6)
            )
            before = service.arbiter.last_rebalance
            assert before.shares[hog.execution_id] == 4  # alone: whole pool
            urgent = submit_map(
                service,
                "urgent",
                width=4,
                leaf=0.15,
                qos=QoS.wall_clock(0.4, priority=Priority.URGENT),
            )
            after = service.arbiter.last_rebalance
            assert after.trigger == f"admit:{urgent.execution_id}"
            # One rebalance tick later the urgent class holds its minimal
            # LP and the hog is preempted down to what remains.
            assert after.shares[urgent.execution_id] == 2
            assert after.shares[hog.execution_id] == 2
            assert after.priorities[urgent.execution_id] == Priority.URGENT
            assert after.committed[urgent.execution_id] == 2
            # Preemption degrades the hog's promise and flags it.
            assert hog.execution_id in after.infeasible
            assert urgent.result(timeout=30.0) == 4
            assert hog.result(timeout=30.0) == 12

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_equal_priority_does_not_preempt_minimal_grants(self, backend):
        """A same-class newcomer only takes the genuinely spare budget."""
        with SkeletonService(
            backend=backend, capacity=4, min_rebalance_interval=0.0
        ) as service:
            hog = submit_map(
                service, "hog", width=12, leaf=0.15, qos=QoS.wall_clock(0.6)
            )
            spare = submit_map(
                service, "spare", width=8, leaf=0.05, value=2, qos=None
            )
            after = service.arbiter.last_rebalance
            # The hog keeps its deadline-meeting 4 workers minus only the
            # newcomer's floor; no preemption below its need ever happens
            # for an equal class (grants: hog >= 3, newcomer the floor).
            assert after.shares[hog.execution_id] >= 3
            assert after.shares[spare.execution_id] == 1
            assert hog.result(timeout=30.0) == 12
            assert spare.result(timeout=30.0) == 16


# ---------------------------------------------------------------------------
# load-aware admission


class TestLoadAwareAdmission:
    HOG = dict(width=8, leaf=0.15)  # needs LP 4 for a 0.4s goal
    LATE = dict(width=4, leaf=0.15)  # needs LP 4 for a 0.28s goal

    def run_scenario(self, backend, load_aware):
        with SkeletonService(
            backend=backend,
            capacity=4,
            min_rebalance_interval=0.0,
            load_aware_admission=load_aware,
        ) as service:
            hog = submit_map(
                service, "hog", qos=QoS.wall_clock(0.4), **self.HOG
            )
            late = submit_map(
                service, "late", value=2, qos=QoS.wall_clock(0.28), **self.LATE
            )
            status_at_submit = late.status()
            assert hog.result(timeout=30.0) == 8
            assert late.result(timeout=30.0) == 8
            return service.stats.tenant("late"), status_at_submit, late

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_eedf_alone_admits_and_misses(self, backend):
        """Without the load gate the goal is admitted into a sure miss.

        With the hog committed to all 4 workers, the late goal can get at
        most 3 (the hog's floor is preemption-proof): 2 rounds of 0.15s
        leaves >= 0.30s against a 0.28s goal — a structural miss, however
        fast the machine.
        """
        stats, status_at_submit, late = self.run_scenario(
            backend, load_aware=False
        )
        assert status_at_submit is ExecutionStatus.RUNNING
        assert stats.held == 0
        assert late.goal_met() is False
        assert stats.goals_missed == 1

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_load_gate_holds_then_meets(self, backend):
        """The same submission is held until the hog drains, then met.

        Feasible on an idle machine (0.15s at LP 4 vs the 0.28s goal), so
        the capacity gate admits it; infeasible under the current load,
        so it waits — and because the WCT goal is relative to its own
        start, the post-drain run meets it comfortably.
        """
        stats, status_at_submit, late = self.run_scenario(
            backend, load_aware=True
        )
        assert status_at_submit is ExecutionStatus.QUEUED
        assert stats.held == 1
        assert late.goal_met() is True
        assert stats.goals_missed == 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_reject_policy_turns_load_hold_into_reject(self, backend):
        with SkeletonService(
            backend=backend,
            capacity=4,
            min_rebalance_interval=0.0,
            admission_policy="reject",
        ) as service:
            hog = submit_map(
                service, "hog", qos=QoS.wall_clock(0.4), **self.HOG
            )
            late = submit_map(
                service, "late", value=2, qos=QoS.wall_clock(0.28), **self.LATE
            )
            assert late.status() is ExecutionStatus.REJECTED
            assert "current load" in late.rejected_reason
            with pytest.raises(AdmissionError):
                late.result(timeout=1.0)
            assert hog.result(timeout=30.0) == 8


# ---------------------------------------------------------------------------
# fair-share weights, live


class TestLiveWeights:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_surplus_follows_the_weights(self, backend):
        """Two best-effort tenants, weights 4:1 on 5 workers -> 3:2 split
        (floors of one each, surplus 3 by largest remainder)."""
        with SkeletonService(
            backend=backend, capacity=5, min_rebalance_interval=0.0
        ) as service:
            heavy = submit_map(
                service, "heavy", width=10, leaf=0.05,
                qos=QoS.best_effort(weight=4.0),
            )
            light = submit_map(
                service, "light", width=10, leaf=0.05, value=2,
                qos=QoS.best_effort(weight=1.0),
            )
            split = service.arbiter.last_rebalance
            assert split.shares[heavy.execution_id] == 3
            assert split.shares[light.execution_id] == 2
            assert split.weights[heavy.execution_id] == 4.0
            assert heavy.result(timeout=30.0) == 10
            assert light.result(timeout=30.0) == 20

    def test_tenant_quota_weight_is_the_default(self):
        from repro.service import TenantQuota

        with SkeletonService(
            backend="threads",
            capacity=5,
            min_rebalance_interval=0.0,
            quotas={"gold": TenantQuota(weight=4.0)},
        ) as service:
            gold = submit_map(
                service, "gold", width=10, leaf=0.05, qos=None
            )
            plain = submit_map(
                service, "plain", width=10, leaf=0.05, value=2, qos=None
            )
            split = service.arbiter.last_rebalance
            # The quota weight flows in when the QoS does not set one.
            assert split.weights[gold.execution_id] == 4.0
            assert split.weights[plain.execution_id] == 1.0
            assert split.shares[gold.execution_id] == 3
            assert gold.result(timeout=30.0) == 10
            assert plain.result(timeout=30.0) == 20


# ---------------------------------------------------------------------------
# async facade


class TestAsyncFacade:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_await_handle_returns_the_result(self, backend):
        with SkeletonService(backend=backend, capacity=4) as service:
            handle = submit_map(service, "t", width=4, leaf=0.05)

            async def consume():
                return await handle

            assert asyncio.run(consume()) == 4

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_statuses_streams_the_lifecycle(self, backend):
        with SkeletonService(backend=backend, capacity=2) as service:
            handle = submit_map(service, "t", width=6, leaf=0.05)

            async def consume():
                return [s async for s in handle.statuses()]

            seen = asyncio.run(consume())
            assert seen[0] is ExecutionStatus.RUNNING
            assert seen[-1] is ExecutionStatus.COMPLETED
            assert len(seen) == len(set(seen))  # each state exactly once

    def test_statuses_observes_queued_then_running(self):
        with SkeletonService(
            backend="threads", capacity=2, max_live=1
        ) as service:
            first = submit_map(service, "t", width=4, leaf=0.1)
            held = submit_map(service, "t", width=2, leaf=0.05, value=2)
            assert held.status() is ExecutionStatus.QUEUED

            async def consume():
                return [s async for s in held.statuses()]

            seen = asyncio.run(consume())
            assert seen[0] is ExecutionStatus.QUEUED
            assert seen[-1] is ExecutionStatus.COMPLETED
            assert first.result(timeout=10.0) == 4

    def test_await_rejected_handle_raises_admission_error(self):
        with SkeletonService(backend="threads", capacity=2) as service:
            # A serial 0.3s chain cannot meet 0.01s however many workers.
            from tests.conftest import (
                sleepy_chain_program,
                sleepy_chain_snapshot,
            )

            chain = sleepy_chain_program(3, 0.1)
            doomed = service.submit(
                chain,
                0,
                qos=QoS.wall_clock(0.01),
                tenant="greedy",
                warm_start=sleepy_chain_snapshot(chain, 3, 0.1),
            )

            async def consume():
                try:
                    await doomed
                except AdmissionError as exc:
                    statuses = [s async for s in doomed.statuses()]
                    return exc, statuses
                raise AssertionError("await did not raise")

            exc, statuses = asyncio.run(consume())
            assert "infeasible" in str(exc)
            assert statuses == [ExecutionStatus.REJECTED]

    def test_await_cancelled_handle_raises(self):
        with SkeletonService(backend="threads", capacity=2) as service:
            handle = submit_map(service, "t", width=8, leaf=0.2)

            async def consume():
                await asyncio.sleep(0.05)
                assert handle.cancel()
                with pytest.raises(ExecutionCancelledError):
                    await handle
                return await handle.exception_async()

            exc = asyncio.run(consume())
            assert isinstance(exc, ExecutionCancelledError)

    def test_await_works_on_the_simulator(self):
        """The driver-backed future drives virtual time inside await."""
        from repro.runtime.costmodel import ConstantCostModel

        with SkeletonService(
            backend="simulated",
            capacity=4,
            min_rebalance_interval=0.0,
            cost_model=ConstantCostModel(1.0),
        ) as service:
            handle = submit_map(service, "t", width=4, leaf=0.0)

            async def consume():
                statuses = [s async for s in handle.statuses()]
                return await handle, statuses

            result, statuses = asyncio.run(consume())
            assert result == 4
            assert statuses[-1] is ExecutionStatus.COMPLETED


# ---------------------------------------------------------------------------
# stats: cancelled executions are not goal misses (regression)


class TestCancelledNotAMiss:
    def test_cancelled_mid_flight_excluded_from_miss_rate(self):
        with SkeletonService(backend="threads", capacity=2) as service:
            handle = submit_map(
                service, "t", width=8, leaf=0.2, qos=QoS.wall_clock(60.0)
            )
            import time

            time.sleep(0.05)
            assert handle.cancel()
            with pytest.raises(ExecutionCancelledError):
                handle.result(timeout=5.0)
            tenant = service.stats.tenant("t")
            assert tenant.cancelled == 1
            assert tenant.goals_met == 0 and tenant.goals_missed == 0
            assert service.stats.goal_miss_rate() is None

    def test_record_finished_ignores_goal_claims_for_cancelled(self):
        """The structural guard: even an (erroneous) goal_met=False from
        the caller must not move the miss counters for a cancellation."""
        stats = ServiceStats()
        stats.record_finished("t", "cancelled", 1.0, goal_met=False)
        stats.record_finished("t", "cancelled", 2.0, goal_met=True)
        tenant = stats.tenant("t")
        assert tenant.cancelled == 2
        assert tenant.goals_met == 0 and tenant.goals_missed == 0
        assert stats.goal_miss_rate() is None
        # ...while completed executions are judged as before.
        stats.record_finished("t", "completed", 3.0, goal_met=False)
        assert stats.tenant("t").goals_missed == 1
        assert stats.goal_miss_rate() == 1.0


# ---------------------------------------------------------------------------
# event-count rebalance throttling (service level, deterministic on the sim)


class TestEventCountThrottling:
    def tick_rebalances(self, service):
        """Rebalances triggered by analysis ticks (not admit/done)."""
        return [
            r
            for r in service.arbiter.rebalances
            if not r.trigger.startswith(("admit:", "done:"))
        ]

    def run_storm(self, min_events):
        from repro.runtime.costmodel import ConstantCostModel

        with SkeletonService(
            backend="simulated",
            capacity=4,
            min_rebalance_interval=0.0,
            min_rebalance_events=min_events,
            cost_model=ConstantCostModel(1.0),
        ) as service:
            # A fine-grained muscle storm: 24 leaves = 24+ analysis points.
            handle = submit_map(service, "t", width=24, leaf=0.0)
            assert handle.result(timeout=30.0) == 24
            return self.tick_rebalances(service)

    def test_storms_rebalance_on_every_tick_by_default(self):
        assert len(self.run_storm(min_events=1)) >= 24

    def test_event_count_throttle_bounds_the_storm(self):
        per_tick = len(self.run_storm(min_events=1))
        throttled = len(self.run_storm(min_events=8))
        assert throttled <= per_tick // 8 + 1
        assert throttled >= 1  # still rebalances, just less often

    def test_forced_rebalances_unaffected(self):
        from repro.runtime.costmodel import ConstantCostModel

        with SkeletonService(
            backend="simulated",
            capacity=4,
            min_rebalance_interval=0.0,
            min_rebalance_events=10**9,
            cost_model=ConstantCostModel(1.0),
        ) as service:
            handle = submit_map(service, "t", width=8, leaf=0.0)
            assert handle.result(timeout=30.0) == 8
            triggers = [r.trigger for r in service.arbiter.rebalances]
            assert self.tick_rebalances(service) == []
            assert any(t.startswith("admit:") for t in triggers)
