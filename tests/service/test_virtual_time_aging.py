"""Virtual-time starvation aging: fairness horizon independent of tick
density (ROADMAP item).

Round-based aging doubles a passed-over tenant's effective weight per
*rebalance round* — so a storm of fine-grained analysis ticks
fast-forwards fairness while a sparse workload stalls it.  Virtual-time
aging (the default) doubles per ``starvation_unit`` *seconds starved* on
the platform clock instead; round-based mode stays available behind
``aging="rounds"``.
"""

import pytest

from repro.core.qos import QoS
from repro.runtime.clock import VirtualClock
from repro.runtime.platform import Platform
from repro.service import LPArbiter
from tests.service.test_arbiter import StubAnalyzer


def make_platform(capacity=3):
    return Platform(parallelism=1, max_parallelism=capacity, clock=VirtualClock())


def contested_analyzers(heavy_weight=1000.0):
    """Two loose-deadline tenants fighting over one surplus worker."""
    return {
        1: StubAnalyzer(1, deadline=1e6, width=12, duration=1.0,
                        qos=QoS(weight=heavy_weight)),
        2: StubAnalyzer(2, deadline=1e6, width=12, duration=1.0,
                        qos=QoS(weight=1.0)),
    }


def rounds_until_feather_wins(arbiter, analyzers, dt, max_rounds=4000):
    """Drive rebalances *dt* apart; return (round, time) of the first
    surplus worker granted to the feather-weight tenant, or None."""
    now = 0.0
    for round_number in range(1, max_rounds + 1):
        now += dt
        outcome = arbiter.rebalance(now, analyzers, force=True)
        if outcome.shares[2] > 1:
            return round_number, now
    return None


class TestVirtualTimeAging:
    def test_fairness_horizon_is_tick_density_independent(self):
        """Same weights, 40x different tick densities: the feather-weight
        tenant wins at (nearly) the same virtual *time*, not the same
        number of rounds."""
        win_times = {}
        for dt in (0.25, 10.0):
            arbiter = LPArbiter(make_platform(), capacity=3)
            won = rounds_until_feather_wins(arbiter, contested_analyzers(), dt)
            assert won is not None, f"starved forever at dt={dt}"
            win_times[dt] = won[1]
        # log2(1000) ~ 9.97 doublings at 1s per doubling; winning requires
        # aged weight > heavy weight, reached within one dt of ~10s.
        assert 9.0 <= win_times[0.25] <= 11.0
        assert 10.0 <= win_times[10.0] <= 20.0  # first rebalance past ~10s

    def test_round_mode_depends_on_tick_density(self):
        """Control group: in rounds mode the *round* count is fixed, so
        the virtual win time scales with tick spacing."""
        win = {}
        for dt in (0.25, 10.0):
            arbiter = LPArbiter(make_platform(), capacity=3, aging="rounds")
            won = rounds_until_feather_wins(arbiter, contested_analyzers(), dt)
            assert won is not None
            win[dt] = won
        assert win[0.25][0] == win[10.0][0]  # same number of rounds...
        assert win[10.0][1] == pytest.approx(win[0.25][1] * 40.0)  # ...40x time

    def test_event_storm_cannot_fast_forward_fairness(self):
        """Thousands of rebalances inside one starvation unit leave the
        heavyweight in control: elapsed starvation, not round count, is
        what ages the weight."""
        arbiter = LPArbiter(make_platform(), capacity=3)
        analyzers = contested_analyzers(heavy_weight=1000.0)
        now = 0.0
        for _ in range(2000):
            now += 1e-4  # 2000 rebalances within 0.2 virtual seconds
            outcome = arbiter.rebalance(now, analyzers, force=True)
            assert outcome.shares[2] == 1
        # The same number of rounds in rounds mode would have flipped the
        # split long ago (2**2000 >> 1000).
        rounds_arbiter = LPArbiter(make_platform(), capacity=3, aging="rounds")
        now = 0.0
        flipped = False
        for _ in range(2000):
            now += 1e-4
            outcome = rounds_arbiter.rebalance(
                now, contested_analyzers(), force=True
            )
            if outcome.shares[2] > 1:
                flipped = True
                break
        assert flipped

    def test_starvation_unit_scales_the_horizon(self):
        """Halving the unit halves the virtual time to parity."""
        fast = LPArbiter(make_platform(), capacity=3, starvation_unit=0.5)
        slow = LPArbiter(make_platform(), capacity=3, starvation_unit=2.0)
        fast_win = rounds_until_feather_wins(fast, contested_analyzers(), 0.25)
        slow_win = rounds_until_feather_wins(slow, contested_analyzers(), 0.25)
        assert fast_win is not None and slow_win is not None
        assert fast_win[1] < slow_win[1]
        assert slow_win[1] == pytest.approx(fast_win[1] * 4.0, rel=0.15)

    def test_starved_seconds_tracks_and_resets(self):
        arbiter = LPArbiter(make_platform(), capacity=3)
        analyzers = contested_analyzers()
        arbiter.rebalance(1.0, analyzers, force=True)
        assert arbiter.starved_seconds(2, now=1.0) == 0.0  # just marked
        arbiter.rebalance(4.0, analyzers, force=True)
        assert arbiter.starved_seconds(2, now=4.0) == pytest.approx(3.0)
        assert arbiter.starved_seconds(1, now=4.0) == 0.0  # heavy is fed
        # Winning resets the clock.
        won = rounds_until_feather_wins(arbiter, analyzers, dt=2.0)
        assert won is not None
        assert arbiter.starved_seconds(2, now=won[1]) == 0.0

    def test_rounds_counter_still_reported_in_virtual_time_mode(self):
        arbiter = LPArbiter(make_platform(), capacity=3)
        analyzers = contested_analyzers()
        for k in range(1, 4):
            arbiter.rebalance(float(k), analyzers, force=True)
            assert arbiter.starved_rounds(2) == k

    def test_departed_execution_prunes_both_clocks(self):
        arbiter = LPArbiter(make_platform(), capacity=3)
        analyzers = contested_analyzers()
        arbiter.rebalance(1.0, analyzers, force=True)
        assert arbiter.starved_rounds(2) == 1
        arbiter.rebalance(2.0, {1: analyzers[1]}, force=True)
        assert arbiter.starved_rounds(2) == 0
        assert arbiter.starved_seconds(2, now=2.0) == 0.0

    def test_validation(self):
        platform = make_platform()
        with pytest.raises(ValueError, match="aging"):
            LPArbiter(platform, capacity=3, aging="bogus")
        with pytest.raises(ValueError, match="starvation_unit"):
            LPArbiter(platform, capacity=3, starvation_unit=0.0)
