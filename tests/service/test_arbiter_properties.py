"""Property harness: scheduler invariants of the QoS-class LP arbiter.

Seeded random tenant/goal generators produce hundreds of arbitration
scenarios (mixes of cold/warm executions, deadlines, weights, priority
classes, per-tenant LP caps) and every resulting :class:`Rebalance` is
checked against the invariants the multi-tenant service relies on:

* **budget** — the applied global LP never exceeds the worker budget,
  and neither does the sum of shares while the budget can hold the
  per-execution floors;
* **floors** — every live execution keeps at least one worker, whatever
  the pressure (no starvation by urgency or by class);
* **ceilings** — no execution is granted more than its useful peak
  (optimal LP) or its own ``MaxLPGoal``;
* **work conservation** — budget is only left idle when every execution
  already sits at its ceiling;
* **no priority inversion** — when a higher-class deadline cannot be
  met, the grant maxed out everything not protected by lower-class
  floors: no lower-class execution holds surplus that could have helped;
* **weighted surplus** — leftover budget splits proportionally to the
  tenant weights (largest-remainder, ±1 worker);
* **starvation-free decay** — a feather-weight tenant under constant
  pressure wins surplus after logarithmically many rounds;
* **churn** — invariants hold across arrivals/departures, and the share
  map applied to the platform always matches the arbitration outcome.

The same sweep runs against the bare virtual-clock platform and against
*real* ``threads`` and ``processes`` pool platforms (idle pools: the
sweep exercises ``set_parallelism``/``set_shares`` resizing, not muscle
execution), so the scheduler contract is pinned on every backend.
"""

import random

import pytest

from repro.core.qos import QoS
from repro.runtime.clock import VirtualClock
from repro.runtime.platform import Platform
from repro.runtime.registry import make_platform
from repro.runtime.spec import PlatformSpec
from repro.service import LPArbiter
from tests.service.test_arbiter import StubAnalyzer

pytestmark = pytest.mark.service_stress

CAPACITY = 6
SEEDS = range(10)
SCENARIOS_PER_SEED = 22  # x 10 seeds = 220 scenarios per backend


@pytest.fixture(scope="module", params=["virtual", "threads", "processes"])
def shared_platform(request):
    """One platform per backend, reused across the whole sweep."""
    if request.param == "virtual":
        yield Platform(
            parallelism=1, max_parallelism=CAPACITY, clock=VirtualClock()
        )
        return
    platform = make_platform(
        PlatformSpec(kind=request.param, workers=1, max_workers=CAPACITY)
    )
    yield platform
    platform.shutdown()


def random_analyzers(rng, capacity):
    """One random scenario: execution id -> stub analyzer."""
    n = rng.randint(1, 2 * capacity)
    analyzers = {}
    for eid in range(1, n + 1):
        cap = rng.choice([None, None, None, rng.randint(1, capacity)])
        weight = rng.choice([0.1, 0.5, 1.0, 1.0, 2.0, 8.0])
        priority = rng.choice([-1, 0, 0, 0, 1, 2])
        qos = QoS(
            max_lp=None,
            weight=weight,
            priority=priority,
        )
        if cap is not None:
            qos = QoS.wall_clock(1e9, max_lp=cap, weight=weight, priority=priority)
        if rng.random() < 0.25:
            analyzers[eid] = StubAnalyzer(eid, cold=True, qos=qos)
        else:
            deadline = (
                None if rng.random() < 0.3 else rng.uniform(0.2, 30.0)
            )
            analyzers[eid] = StubAnalyzer(
                eid,
                deadline=deadline,
                width=rng.randint(1, 10),
                duration=rng.choice([0.1, 0.5, 1.0, 2.0]),
                qos=qos,
            )
    return analyzers


def scenario_ceiling(outcome, analyzers, eid, capacity):
    """The useful peak the arbiter must not exceed for *eid*."""
    analyzer = analyzers[eid]
    cap = analyzer.qos.max_threads if analyzer.qos else None
    if eid in outcome.cold:
        ceiling = capacity
    else:
        report = analyzer.analyze(outcome.time)
        ceiling = min(report.optimal_lp, capacity)
    if cap is not None:
        ceiling = min(ceiling, cap)
    return max(1, ceiling)


def check_invariants(outcome, analyzers, capacity):
    n = len(analyzers)
    shares = outcome.shares
    assert set(shares) == set(analyzers)

    # budget
    assert 1 <= outcome.total_lp <= capacity
    assert sum(shares.values()) <= max(capacity, n)

    ceilings = {
        eid: scenario_ceiling(outcome, analyzers, eid, capacity)
        for eid in analyzers
    }
    for eid, share in shares.items():
        # floors and ceilings
        assert share >= 1
        assert share <= ceilings[eid], (
            f"execution {eid} granted {share} beyond its ceiling "
            f"{ceilings[eid]}"
        )
        # the guaranteed phase never exceeds the final grant
        assert 1 <= outcome.committed[eid] <= share

    # work conservation: idle budget only when everyone is saturated
    if n <= capacity and sum(shares.values()) < capacity:
        assert all(shares[eid] == ceilings[eid] for eid in analyzers), (
            f"idle budget left while executions below their ceilings: "
            f"shares={shares} ceilings={ceilings}"
        )

    # no priority inversion: an unmet higher-class deadline means the
    # grant already maxed out everything lower-class floors allow
    for hot in outcome.infeasible:
        if shares[hot] >= ceilings[hot]:
            continue  # saturated: more workers would idle, not help
        lower = [
            eid
            for eid in analyzers
            if outcome.priorities[eid] < outcome.priorities[hot]
        ]
        assert all(shares[eid] == 1 for eid in lower), (
            f"priority inversion: {hot} (class {outcome.priorities[hot]}) "
            f"missed its deadline below ceiling while lower classes hold "
            f"surplus: shares={shares}"
        )


class TestRandomizedSweep:
    """220 seeded scenarios per backend, every invariant on every one."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_invariants_hold(self, shared_platform, seed):
        rng = random.Random(1000 + seed)
        for scenario in range(SCENARIOS_PER_SEED):
            arbiter = LPArbiter(shared_platform, capacity=CAPACITY)
            analyzers = random_analyzers(rng, CAPACITY)
            now = rng.uniform(0.0, 5.0)
            outcome = arbiter.rebalance(now, analyzers, trigger="sweep")
            check_invariants(outcome, analyzers, CAPACITY)
            # the platform always carries exactly the arbitrated split
            assert shared_platform.get_shares() == outcome.shares
            assert shared_platform.get_parallelism() == outcome.total_lp

    @pytest.mark.parametrize("seed", SEEDS)
    def test_invariants_hold_under_churn(self, shared_platform, seed):
        """Arrivals and departures between rebalances of one arbiter."""
        rng = random.Random(7000 + seed)
        arbiter = LPArbiter(shared_platform, capacity=CAPACITY)
        analyzers = random_analyzers(rng, CAPACITY)
        now = 0.0
        for step in range(20):
            now += rng.uniform(0.01, 1.0)
            outcome = arbiter.rebalance(
                now, analyzers, trigger=f"churn:{step}", force=True
            )
            check_invariants(outcome, analyzers, CAPACITY)
            # churn: drop up to one execution, add up to two
            if analyzers and rng.random() < 0.5:
                analyzers.pop(rng.choice(sorted(analyzers)))
            for _ in range(rng.randint(0, 2)):
                eid = max(analyzers, default=0) + 1
                fresh = random_analyzers(rng, CAPACITY)
                analyzers[eid] = fresh[rng.choice(sorted(fresh))]
                analyzers[eid].execution_id = eid
            if not analyzers:
                analyzers = random_analyzers(rng, CAPACITY)


class TestWeightedSurplus:
    """Leftover budget splits by weight, largest-remainder, ±1 worker."""

    @staticmethod
    def surplus_analyzers(weights, capacity):
        """Warm, loose-deadline tenants: minimal grant 1, huge ceilings."""
        return {
            eid: StubAnalyzer(
                eid,
                deadline=1e6,
                width=4 * capacity,  # optimal LP far above any grant
                duration=1.0,
                qos=QoS(weight=weight),
            )
            for eid, weight in weights.items()
        }

    @pytest.mark.parametrize("seed", SEEDS)
    def test_split_proportional_to_weights(self, seed):
        rng = random.Random(3000 + seed)
        for _ in range(20):
            capacity = rng.randint(4, 24)
            n = rng.randint(2, min(6, capacity))
            weights = {
                eid: rng.choice([0.25, 0.5, 1.0, 2.0, 4.0, 10.0])
                for eid in range(1, n + 1)
            }
            platform = Platform(
                parallelism=1, max_parallelism=capacity, clock=VirtualClock()
            )
            arbiter = LPArbiter(platform, capacity=capacity)
            outcome = arbiter.rebalance(
                0.0, self.surplus_analyzers(weights, capacity)
            )
            leftover = capacity - n  # everyone's guaranteed grant is 1
            total_weight = sum(weights.values())
            for eid, weight in weights.items():
                exact = leftover * weight / total_weight
                surplus = outcome.shares[eid] - outcome.committed[eid]
                assert abs(surplus - exact) <= 1.0, (
                    f"weight split off by more than one worker: "
                    f"weights={weights} shares={outcome.shares}"
                )

    def test_equal_weights_split_evenly(self):
        platform = Platform(
            parallelism=1, max_parallelism=9, clock=VirtualClock()
        )
        arbiter = LPArbiter(platform, capacity=9)
        outcome = arbiter.rebalance(
            0.0, self.surplus_analyzers({1: 1.0, 2: 1.0, 3: 1.0}, 9)
        )
        assert outcome.shares == {1: 3, 2: 3, 3: 3}

    def test_double_weight_doubles_surplus(self):
        platform = Platform(
            parallelism=1, max_parallelism=8, clock=VirtualClock()
        )
        arbiter = LPArbiter(platform, capacity=8)
        outcome = arbiter.rebalance(
            0.0, self.surplus_analyzers({1: 2.0, 2: 1.0}, 8)
        )
        # 6 surplus workers at weights 2:1 -> 4 and 2, on top of the floors.
        assert outcome.shares == {1: 5, 2: 3}

    def test_capped_surplus_flows_to_the_rest(self):
        platform = Platform(
            parallelism=1, max_parallelism=10, clock=VirtualClock()
        )
        arbiter = LPArbiter(platform, capacity=10)
        analyzers = self.surplus_analyzers({1: 100.0, 2: 1.0}, 10)
        analyzers[1] = StubAnalyzer(
            1,
            deadline=1e6,
            width=40,
            duration=1.0,
            qos=QoS.wall_clock(1e9, max_lp=3, weight=100.0),
        )
        outcome = arbiter.rebalance(0.0, analyzers)
        # The heavyweight is capped at 3; the rest of the pool water-falls
        # to the lightweight instead of idling.
        assert outcome.shares == {1: 3, 2: 7}


class TestStarvationFreeDecay:
    def test_feather_weight_tenant_wins_surplus_eventually(self):
        platform = Platform(
            parallelism=1, max_parallelism=3, clock=VirtualClock()
        )
        arbiter = LPArbiter(platform, capacity=3)
        analyzers = {
            1: StubAnalyzer(1, deadline=1e6, width=12, duration=1.0,
                            qos=QoS(weight=1000.0)),
            2: StubAnalyzer(2, deadline=1e6, width=12, duration=1.0,
                            qos=QoS(weight=1.0)),
        }
        # One surplus worker; the heavyweight takes it round after round
        # until the feather weight's aged weight overtakes (2**k > 1000).
        won_at = None
        for round_number in range(1, 16):
            outcome = arbiter.rebalance(
                float(round_number), analyzers, force=True
            )
            if outcome.shares[2] > 1:
                won_at = round_number
                break
            assert arbiter.starved_rounds(2) == round_number
        assert won_at is not None, "feather-weight tenant starved forever"
        assert won_at <= 12  # log2(1000) ~ 10 rounds of doubling
        assert arbiter.starved_rounds(2) == 0  # fed -> aging resets

    def test_aging_state_pruned_with_the_execution(self):
        platform = Platform(
            parallelism=1, max_parallelism=3, clock=VirtualClock()
        )
        arbiter = LPArbiter(platform, capacity=3)
        analyzers = {
            1: StubAnalyzer(1, deadline=1e6, width=8, duration=1.0,
                            qos=QoS(weight=50.0)),
            2: StubAnalyzer(2, deadline=1e6, width=8, duration=1.0,
                            qos=QoS(weight=1.0)),
        }
        arbiter.rebalance(0.0, analyzers, force=True)
        assert arbiter.starved_rounds(2) == 1
        arbiter.rebalance(1.0, {1: analyzers[1]}, force=True)
        assert arbiter.starved_rounds(2) == 0

    def test_zero_surplus_rounds_do_not_age(self):
        """A saturated guaranteed phase leaves the aging counters alone:
        nobody was passed over, so nobody banks a head start."""
        platform = Platform(
            parallelism=1, max_parallelism=2, clock=VirtualClock()
        )
        arbiter = LPArbiter(platform, capacity=2)
        analyzers = {
            1: StubAnalyzer(1, deadline=1e6, width=8, duration=1.0,
                            qos=QoS(weight=50.0)),
            2: StubAnalyzer(2, deadline=1e6, width=8, duration=1.0,
                            qos=QoS(weight=1.0)),
        }
        for round_number in range(5):
            arbiter.rebalance(float(round_number), analyzers, force=True)
            assert arbiter.starved_rounds(1) == 0
            assert arbiter.starved_rounds(2) == 0

    def test_disabled_aging_keeps_pure_weights(self):
        platform = Platform(
            parallelism=1, max_parallelism=3, clock=VirtualClock()
        )
        arbiter = LPArbiter(platform, capacity=3, starvation_base=1.0)
        analyzers = {
            1: StubAnalyzer(1, deadline=1e6, width=12, duration=1.0,
                            qos=QoS(weight=1000.0)),
            2: StubAnalyzer(2, deadline=1e6, width=12, duration=1.0,
                            qos=QoS(weight=1.0)),
        }
        for round_number in range(1, 20):
            outcome = arbiter.rebalance(
                float(round_number), analyzers, force=True
            )
            assert outcome.shares[2] == 1  # starves: aging is off


class TestPriorityClasses:
    def test_higher_class_served_before_earlier_deadline(self):
        platform = Platform(
            parallelism=1, max_parallelism=4, clock=VirtualClock()
        )
        arbiter = LPArbiter(platform, capacity=4)
        analyzers = {
            # Lower class, *earlier* deadline, needs the whole pool.
            1: StubAnalyzer(1, deadline=4.0, width=4, duration=3.0,
                            qos=QoS(weight=1.0, priority=0)),
            # Higher class, later deadline, needs 3 of 4.
            2: StubAnalyzer(2, deadline=9.0, width=8, duration=3.0,
                            qos=QoS(weight=1.0, priority=2)),
        }
        outcome = arbiter.rebalance(0.0, analyzers)
        # Class 2 is served first: 8 x 3s leaves by t=9 needs LP 3; the
        # lower class keeps only what is left (its floor), deadline or not.
        assert outcome.shares[2] == 3
        assert outcome.shares[1] == 1
        assert outcome.infeasible == (1,)

    def test_batch_class_yields_to_normal(self):
        platform = Platform(
            parallelism=1, max_parallelism=4, clock=VirtualClock()
        )
        arbiter = LPArbiter(platform, capacity=4)
        analyzers = {
            1: StubAnalyzer(1, deadline=3.5, width=6, duration=1.0,
                            qos=QoS(weight=1.0, priority=-1)),
            2: StubAnalyzer(2, deadline=3.5, width=6, duration=1.0,
                            qos=QoS(weight=1.0, priority=0)),
        }
        outcome = arbiter.rebalance(0.0, analyzers)
        # Same deadline: the NORMAL class arbitrates strictly first (6 x
        # 1s leaves by 3.5 -> LP 2), BATCH takes what remains.
        assert outcome.shares[2] >= outcome.shares[1]
        assert outcome.priorities == {1: -1, 2: 0}


class TestEventCountThrottle:
    """Satellite: rebalance throttling by analysis-event count."""

    def analyzers(self):
        return {1: StubAnalyzer(1, deadline=1e6, width=4, duration=1.0)}

    def test_non_forced_rebalance_waits_for_min_events(self):
        platform = Platform(
            parallelism=1, max_parallelism=4, clock=VirtualClock()
        )
        arbiter = LPArbiter(platform, capacity=4, min_events=3)
        analyzers = self.analyzers()
        for tick in range(2):
            arbiter.note_tick()
            assert not arbiter.due(float(tick))
            assert arbiter.rebalance(float(tick), analyzers) is None
        arbiter.note_tick()
        assert arbiter.due(2.0)
        assert arbiter.rebalance(2.0, analyzers) is not None
        # the applied rebalance resets the event counter
        arbiter.note_tick()
        assert arbiter.rebalance(3.0, analyzers) is None

    def test_forced_rebalance_bypasses_and_resets(self):
        platform = Platform(
            parallelism=1, max_parallelism=4, clock=VirtualClock()
        )
        arbiter = LPArbiter(platform, capacity=4, min_events=5)
        analyzers = self.analyzers()
        assert arbiter.rebalance(0.0, analyzers, force=True) is not None
        arbiter.note_tick()
        assert arbiter.rebalance(1.0, analyzers) is None  # 1 < 5 again

    def test_layered_with_time_throttle(self):
        platform = Platform(
            parallelism=1, max_parallelism=4, clock=VirtualClock()
        )
        arbiter = LPArbiter(
            platform, capacity=4, min_interval=1.0, min_events=2
        )
        analyzers = self.analyzers()
        assert arbiter.rebalance(0.0, analyzers, force=True) is not None
        # enough events, not enough time
        arbiter.note_tick()
        arbiter.note_tick()
        assert arbiter.rebalance(0.5, analyzers) is None
        # enough time, events preserved from above
        assert arbiter.rebalance(2.0, analyzers) is not None

    def test_validation(self):
        platform = Platform(
            parallelism=1, max_parallelism=4, clock=VirtualClock()
        )
        with pytest.raises(ValueError, match="min_events"):
            LPArbiter(platform, capacity=4, min_events=0)
        with pytest.raises(ValueError, match="starvation_base"):
            LPArbiter(platform, capacity=4, starvation_base=0.5)
