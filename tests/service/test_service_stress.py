"""Sustained multi-tenant load on the shared service (service-stress tier).

Run in CI as a dedicated job: ``pytest -m service_stress``.
"""

import random
import time

import pytest

from repro import QoS, SkeletonService
from repro.events import EventRecorder, check_balanced
from repro.service import ExecutionStatus, TenantQuota
from tests.conftest import sleepy_map_program, sleepy_map_snapshot

pytestmark = [pytest.mark.service_stress, pytest.mark.slow]


def submit_wave(service, tenant, count, width, leaf, goal, rng):
    handles = []
    for i in range(count):
        program = sleepy_map_program(width, leaf)
        handles.append(
            service.submit(
                program,
                rng.randrange(100),
                qos=QoS.wall_clock(goal),
                tenant=tenant,
                warm_start=sleepy_map_snapshot(program, width, leaf),
            )
        )
    return handles


class TestSustainedLoad:
    def test_waves_of_tenants_on_shared_threads(self):
        rng = random.Random(7)
        recorder = EventRecorder()
        with SkeletonService(
            backend="threads",
            capacity=8,
            default_quota=TenantQuota(max_active=4, max_pending=16),
        ) as service:
            service.platform.add_listener(recorder)
            handles = []
            for wave in range(3):
                for t in range(4):
                    handles += submit_wave(
                        service,
                        tenant=f"tenant-{t}",
                        count=2,
                        width=4 + t,
                        leaf=0.02,
                        goal=20.0,
                        rng=rng,
                    )
                time.sleep(0.05)
            assert service.drain(timeout=60.0)

        # Everything completed with the right answers.
        assert len(handles) == 24
        for handle in handles:
            assert handle.status() is ExecutionStatus.COMPLETED
            width = len(handle.program.split(handle.value))
            assert handle.result() == handle.value * width
            assert handle.goal_met() is True

        # Per-execution event streams stayed clean under load.
        for handle in handles:
            events = recorder.for_execution(handle.execution_id)
            assert events and check_balanced(events)

        # Quotas were honoured: never more than 4 active per tenant.
        stats = service.stats
        assert stats.completed == 24
        assert stats.goal_miss_rate() == 0.0
        for t in range(4):
            tenant = stats.tenant(f"tenant-{t}")
            assert tenant.completed == 6

        # Arbitration stayed inside the budget the whole time.
        for rebalance in service.arbiter.rebalances:
            assert rebalance.total_lp <= 8
            assert all(s >= 1 for s in rebalance.shares.values())

    def test_mixed_outcomes_under_load(self):
        rng = random.Random(11)
        with SkeletonService(
            backend="threads",
            capacity=6,
            default_quota=TenantQuota(max_active=2, max_pending=4),
        ) as service:
            completed = submit_wave(
                service, "steady", count=4, width=4, leaf=0.02, goal=20.0, rng=rng
            )
            cancelled = submit_wave(
                service, "fickle", count=2, width=30, leaf=0.05, goal=30.0, rng=rng
            )
            time.sleep(0.05)
            for handle in cancelled:
                assert handle.cancel()
            assert service.drain(timeout=60.0)
            for handle in completed:
                assert handle.status() is ExecutionStatus.COMPLETED
            for handle in cancelled:
                assert handle.status() is ExecutionStatus.CANCELLED
            stats = service.stats
            assert stats.tenant("steady").completed == 4
            assert stats.tenant("fickle").cancelled == 2

    def test_processes_backend_under_load(self):
        rng = random.Random(13)
        with SkeletonService(backend="processes", capacity=6) as service:
            handles = []
            for t in range(3):
                handles += submit_wave(
                    service,
                    tenant=f"proc-{t}",
                    count=3,
                    width=5,
                    leaf=0.02,
                    goal=20.0,
                    rng=rng,
                )
            assert service.drain(timeout=60.0)
        for handle in handles:
            assert handle.status() is ExecutionStatus.COMPLETED
            assert handle.result() == handle.value * 5
        assert service.stats.completed == 9
