"""Units: tenant quotas, the tenant book and the admission controller."""

import pytest

from repro import QoS
from repro.core.estimator import EstimatorRegistry
from repro.core.persistence import restore_estimates
from repro.service import AdmissionController, TenantQuota
from repro.service.tenancy import TenantBook
from tests.conftest import sleepy_chain_program, sleepy_chain_snapshot

# ---------------------------------------------------------------------------
# tenancy


class TestTenantQuota:
    def test_rejects_non_positive_caps(self):
        with pytest.raises(ValueError):
            TenantQuota(max_active=0)
        with pytest.raises(ValueError):
            TenantQuota(max_pending=-1)

    def test_unlimited_by_default(self):
        quota = TenantQuota()
        assert quota.max_active is None and quota.max_pending is None


class TestTenantBook:
    def test_quota_lookup_falls_back_to_default(self):
        book = TenantBook(
            default_quota=TenantQuota(max_active=2),
            quotas={"vip": TenantQuota(max_active=10)},
        )
        assert book.quota_for("vip").max_active == 10
        assert book.quota_for("anyone").max_active == 2

    def test_active_counting_and_caps(self):
        book = TenantBook(default_quota=TenantQuota(max_active=2))
        assert book.can_start("t")
        book.started("t")
        book.started("t")
        assert not book.can_start("t")
        book.finished("t")
        assert book.can_start("t")
        assert book.active("t") == 1 and book.total_active() == 1

    def test_pending_counting_and_caps(self):
        book = TenantBook(default_quota=TenantQuota(max_pending=1))
        assert book.can_queue("t")
        book.queued("t")
        assert not book.can_queue("t")
        book.dequeued("t")
        assert book.can_queue("t") and book.total_pending() == 0

    def test_negative_counter_raises(self):
        book = TenantBook()
        with pytest.raises(ValueError):
            book.finished("never-started")


# ---------------------------------------------------------------------------
# admission


def warm_estimators(program, stages, duration):
    estimators = EstimatorRegistry()
    restore_estimates(
        program, estimators, sleepy_chain_snapshot(program, stages, duration)
    )
    return estimators


class TestAdmissionValidation:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            AdmissionController(capacity=0)

    def test_rejects_bad_policy(self):
        with pytest.raises(ValueError):
            AdmissionController(capacity=1, policy="meh")

    def test_rejects_bad_max_live(self):
        with pytest.raises(ValueError):
            AdmissionController(capacity=1, max_live=0)


class TestFeasibilityGate:
    def test_cold_submission_admitted_optimistically(self):
        program = sleepy_chain_program(4, 1.0)
        controller = AdmissionController(capacity=8)
        decision = controller.evaluate(
            program, QoS.wall_clock(0.001), EstimatorRegistry(), "t", live_count=0
        )
        assert decision.admitted  # no estimates -> paper's cold start

    def test_warm_infeasible_goal_rejected(self):
        program = sleepy_chain_program(4, 1.0)  # serial chain: 4s minimum
        estimators = warm_estimators(program, 4, 1.0)
        controller = AdmissionController(capacity=8)
        decision = controller.evaluate(
            program, QoS.wall_clock(1.0), estimators, "t", live_count=0
        )
        assert decision.rejected
        assert "infeasible" in decision.reason

    def test_warm_feasible_goal_admitted(self):
        program = sleepy_chain_program(4, 1.0)
        estimators = warm_estimators(program, 4, 1.0)
        controller = AdmissionController(capacity=8)
        decision = controller.evaluate(
            program, QoS.wall_clock(10.0), estimators, "t", live_count=0
        )
        assert decision.admitted

    def test_qos_max_lp_tightens_the_projection(self):
        # 4 independent 1s stages would fit a 2s goal at LP 4 but the
        # tenant itself capped its LP at 1 -> projection must miss.
        from tests.conftest import sleepy_map_program, sleepy_map_snapshot

        program = sleepy_map_program(4, 1.0)
        estimators = EstimatorRegistry()
        restore_estimates(program, estimators, sleepy_map_snapshot(program, 4, 1.0))
        controller = AdmissionController(capacity=8)
        ok = controller.evaluate(
            program, QoS.wall_clock(2.0), estimators, "t", live_count=0
        )
        assert ok.admitted
        capped = controller.evaluate(
            program, QoS.wall_clock(2.0, max_lp=1), estimators, "t", live_count=0
        )
        assert capped.rejected

    def test_no_goal_never_gated(self):
        program = sleepy_chain_program(4, 1.0)
        estimators = warm_estimators(program, 4, 1.0)
        controller = AdmissionController(capacity=1)
        assert controller.evaluate(program, None, estimators, "t", 0).admitted


class TestCapsAndPolicies:
    def test_max_live_holds_by_default(self):
        controller = AdmissionController(capacity=8, max_live=1)
        program = sleepy_chain_program(2, 0.1)
        decision = controller.evaluate(
            program, None, EstimatorRegistry(), "t", live_count=1
        )
        assert decision.held
        assert "live-execution cap" in decision.reason

    def test_max_live_rejects_under_reject_policy(self):
        controller = AdmissionController(capacity=8, policy="reject", max_live=1)
        program = sleepy_chain_program(2, 0.1)
        decision = controller.evaluate(
            program, None, EstimatorRegistry(), "t", live_count=1
        )
        assert decision.rejected

    def test_tenant_active_cap_holds(self):
        book = TenantBook(default_quota=TenantQuota(max_active=1))
        controller = AdmissionController(capacity=8, tenants=book)
        book.started("t")
        program = sleepy_chain_program(2, 0.1)
        decision = controller.evaluate(
            program, None, EstimatorRegistry(), "t", live_count=1
        )
        assert decision.held
        assert "active quota" in decision.reason

    def test_pending_cap_rejects_held_overflow(self):
        book = TenantBook(
            default_quota=TenantQuota(max_active=1, max_pending=1)
        )
        controller = AdmissionController(capacity=8, tenants=book)
        book.started("t")
        book.queued("t")  # pending slot already taken
        program = sleepy_chain_program(2, 0.1)
        decision = controller.evaluate(
            program, None, EstimatorRegistry(), "t", live_count=1
        )
        assert decision.rejected
        assert "pending quota" in decision.reason

    def test_can_start_now_mirrors_blockers(self):
        book = TenantBook(default_quota=TenantQuota(max_active=1))
        controller = AdmissionController(capacity=8, tenants=book, max_live=2)
        assert controller.can_start_now("t", live_count=0)
        assert not controller.can_start_now("t", live_count=2)
        book.started("t")
        assert not controller.can_start_now("t", live_count=1)


class TestLoadGate:
    """Load-aware admission: project against the *currently free* budget."""

    def controller(self, capacity=8, **kwargs):
        return AdmissionController(capacity=capacity, **kwargs)

    def warm_map(self, width=4, duration=1.0):
        from tests.conftest import sleepy_map_program, sleepy_map_snapshot

        program = sleepy_map_program(width, duration)
        estimators = EstimatorRegistry()
        restore_estimates(
            program, estimators, sleepy_map_snapshot(program, width, duration)
        )
        return program, estimators

    def test_feasible_idle_infeasible_under_load_is_held(self):
        program, estimators = self.warm_map(width=4, duration=1.0)
        controller = self.controller()
        idle = controller.evaluate(
            program, QoS.wall_clock(2.0), estimators, "t", 0, available_lp=8
        )
        assert idle.admitted
        loaded = controller.evaluate(
            program, QoS.wall_clock(2.0), estimators, "t", 1, available_lp=1
        )
        assert loaded.held
        assert "current load" in loaded.reason

    def test_load_gate_reports_the_capped_usable_budget(self):
        # available 5 but MaxLPGoal 1: the binding constraint (and the
        # number in the reason) must be the submission's own cap.
        program, estimators = self.warm_map(width=4, duration=1.0)
        controller = self.controller()
        decision = controller.evaluate(
            program,
            QoS.wall_clock(2.0, max_lp=1),
            estimators,
            "t",
            1,
            available_lp=5,
        )
        assert decision.rejected  # infeasible even dedicated (cap 1)
        assert "all 1 workers" in decision.reason

    def test_zero_availability_with_max_lp_one_matches_capacity_gate(self):
        # dedicated == usable == 1: the load gate must add nothing beyond
        # the capacity gate, whichever way the goal falls.
        program, estimators = self.warm_map(width=4, duration=1.0)
        controller = self.controller()
        fits_on_one = controller.evaluate(
            program, QoS.wall_clock(9.0, max_lp=1), estimators, "t", 1,
            available_lp=0,
        )
        assert fits_on_one.admitted
        misses_on_one = controller.evaluate(
            program, QoS.wall_clock(2.0, max_lp=1), estimators, "t", 1,
            available_lp=0,
        )
        assert misses_on_one.rejected

    def test_unknown_load_skips_the_gate(self):
        program, estimators = self.warm_map(width=4, duration=1.0)
        controller = self.controller()
        decision = controller.evaluate(
            program, QoS.wall_clock(2.0), estimators, "t", 1, available_lp=None
        )
        assert decision.admitted

    def test_load_aware_false_restores_pr2_behaviour(self):
        program, estimators = self.warm_map(width=4, duration=1.0)
        controller = self.controller(load_aware=False)
        decision = controller.evaluate(
            program, QoS.wall_clock(2.0), estimators, "t", 1, available_lp=1
        )
        assert decision.admitted

    def test_reject_policy_rejects_load_blocked(self):
        program, estimators = self.warm_map(width=4, duration=1.0)
        controller = self.controller(policy="reject")
        decision = controller.evaluate(
            program, QoS.wall_clock(2.0), estimators, "t", 1, available_lp=1
        )
        assert decision.rejected

    def test_cold_submission_not_load_gated(self):
        from tests.conftest import sleepy_map_program

        controller = self.controller()
        decision = controller.evaluate(
            sleepy_map_program(4, 1.0),
            QoS.wall_clock(0.001),
            EstimatorRegistry(),
            "t",
            3,
            available_lp=0,
        )
        assert decision.admitted  # cold start stays optimistic

    def test_load_allows_mirrors_the_gate(self):
        program, estimators = self.warm_map(width=4, duration=1.0)
        controller = self.controller()
        assert controller.load_allows(program, QoS.wall_clock(2.0), estimators, 4)
        assert not controller.load_allows(program, QoS.wall_clock(2.0), estimators, 1)
        assert controller.load_allows(program, None, estimators, 0)
