"""Service lifecycle on the deterministic simulator and small real pools.

The simulator drives the full service stack — admission, scoped
analyzers, arbitration, promotion of held work — in virtual time, so
these tests are timing-noise-free; a few thread-pool cases cover the
asynchronous paths (drain, cancel-in-flight).
"""

import time

import pytest

from repro import (
    Execute,
    Map,
    Merge,
    QoS,
    Seq,
    SimulatedPlatform,
    Split,
    SkeletonService,
)
from repro.errors import AdmissionError, ExecutionCancelledError, ServiceError
from repro.runtime.costmodel import ConstantCostModel
from repro.service import ExecutionStatus, TenantQuota


def timed_map_program(width):
    return Map(
        Split(lambda v, w=width: [v] * w, name="split"),
        Seq(Execute(lambda v: v, name="leaf")),
        Merge(sum, name="merge"),
    )


def sim_service(**kwargs):
    platform = SimulatedPlatform(
        parallelism=1, cost_model=ConstantCostModel(1.0), max_parallelism=4
    )
    return SkeletonService(platform=platform, **kwargs)


class TestSimulatedService:
    def test_submit_runs_and_completes(self):
        service = sim_service()
        handle = service.submit(timed_map_program(4), 2, qos=QoS.wall_clock(100.0))
        assert handle.result() == 8
        assert handle.status() is ExecutionStatus.COMPLETED
        assert handle.wall_clock() > 0
        assert service.live_count == 0

    def test_concurrent_submissions_share_the_simulator(self):
        service = sim_service()
        handles = [
            service.submit(timed_map_program(3), i, qos=QoS.wall_clock(100.0))
            for i in range(3)
        ]
        assert [h.result() for h in handles] == [0, 3, 6]
        assert all(h.goal_met() for h in handles)
        # One rebalance per admission at minimum.
        assert len(service.arbiter.rebalances) >= 3

    def test_held_submission_promoted_after_completion(self):
        service = sim_service(max_live=1)
        first = service.submit(timed_map_program(3), 1)
        second = service.submit(timed_map_program(3), 2)
        assert second.status() is ExecutionStatus.QUEUED
        assert service.held_count == 1
        # Driving the held handle's future drives the simulator loop:
        # the first completes, promotion launches the second.
        assert second.result() == 6
        assert first.result() == 3
        assert service.held_count == 0
        stats = service.stats.tenant("default")
        assert stats.held == 1 and stats.completed == 2

    def test_cancel_held_submission(self):
        service = sim_service(max_live=1)
        service.submit(timed_map_program(3), 1)
        held = service.submit(timed_map_program(3), 2)
        assert held.cancel() is True
        assert held.status() is ExecutionStatus.CANCELLED
        with pytest.raises(ExecutionCancelledError):
            held.result()
        assert service.held_count == 0
        assert held.cancel() is False  # idempotent: already finished

    def test_failed_muscle_reports_failed(self):
        from repro.errors import MuscleExecutionError

        service = sim_service()
        bad = Seq(Execute(lambda v: 1 / 0, name="boom"))
        handle = service.submit(bad, 1)
        with pytest.raises(MuscleExecutionError, match="boom"):
            handle.result()
        assert handle.status() is ExecutionStatus.FAILED
        assert service.stats.tenant("default").failed == 1

    def test_tenant_quota_enforced_via_service(self):
        service = sim_service(
            default_quota=TenantQuota(max_active=1, max_pending=1)
        )
        service.submit(timed_map_program(3), 1, tenant="t")
        second = service.submit(timed_map_program(3), 2, tenant="t")
        third = service.submit(timed_map_program(3), 3, tenant="t")
        assert second.status() is ExecutionStatus.QUEUED
        assert third.status() is ExecutionStatus.REJECTED
        with pytest.raises(AdmissionError, match="pending quota"):
            third.result()

    def test_shutdown_rejects_new_and_held(self):
        service = sim_service(max_live=1)
        first = service.submit(timed_map_program(3), 1)
        held = service.submit(timed_map_program(3), 2)
        assert first.result() == 3
        # Promotion happened on the first completion; drive the promoted
        # execution to its end before closing (the simulator only runs
        # while a future drives it).
        assert held.result() == 6
        service.shutdown()
        with pytest.raises(ServiceError):
            service.submit(timed_map_program(3), 3)

    def test_shutdown_rejects_still_held_submissions(self):
        service = sim_service(max_live=1)
        service.submit(timed_map_program(3), 1)
        held = service.submit(timed_map_program(3), 2)
        # Close while the first never ran (simulator not driven).
        service.shutdown(wait=False)
        assert held.status() is ExecutionStatus.REJECTED
        with pytest.raises(AdmissionError, match="shutting down"):
            held.result()

    def test_capacity_required(self):
        with pytest.raises(ServiceError, match="budget"):
            SkeletonService(platform=SimulatedPlatform(parallelism=2))
        with pytest.raises(ServiceError, match="capacity"):
            SkeletonService(backend="threads")


class TestThreadService:
    def test_drain_waits_for_everything(self):
        with SkeletonService(backend="threads", capacity=4) as service:
            fe = Execute(lambda v: (time.sleep(0.02), v)[1], name="fe")
            handles = [
                service.submit(
                    Map(
                        Split(lambda v: [v] * 4, name="fs"),
                        Seq(fe),
                        Merge(sum, name="fm"),
                    ),
                    i,
                )
                for i in range(3)
            ]
            assert service.drain(timeout=10.0)
            assert all(h.done() for h in handles)
            assert service.stats.completed == 3

    def test_cancel_running_execution(self):
        with SkeletonService(backend="threads", capacity=2) as service:
            # A wide map of slow leaves: cancellation lands mid-flight and
            # the platform drops the remaining tasks.
            program = Map(
                Split(lambda v: [v] * 50, name="fs"),
                Seq(Execute(lambda v: (time.sleep(0.05), v)[1], name="fe")),
                Merge(sum, name="fm"),
            )
            handle = service.submit(program, 1)
            time.sleep(0.1)  # let a few leaves start
            assert handle.cancel() is True
            assert handle.status() is ExecutionStatus.CANCELLED
            with pytest.raises(ExecutionCancelledError):
                handle.result(timeout=5.0)
            assert service.drain(timeout=10.0)
            assert service.stats.tenant("default").cancelled == 1

    def test_handle_repr_mentions_status(self):
        with SkeletonService(backend="threads", capacity=2) as service:
            handle = service.submit(Seq(Execute(lambda v: v, name="id")), 5)
            handle.result(timeout=5.0)
            assert "completed" in repr(handle)
