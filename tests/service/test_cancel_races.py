"""Cancellation races: cancel-while-held, cancel-mid-run, cancel-after-done.

Exercised on the real thread and process pools, where cancellation truly
races the run.  The held-path regression this locks in: cancelling a held
queue *head* that holds a backfill reservation must immediately re-run
the promotion sweep — before the fix, later load-held submissions stayed
stuck behind a reservation whose owner no longer existed, until some
unrelated completion happened to promote them.
"""

import time

import pytest

from repro import QoS, SkeletonService
from repro.errors import ExecutionCancelledError
from repro.service import ExecutionStatus
from tests.conftest import sleepy_map_program, sleepy_map_snapshot

pytestmark = [pytest.mark.integration]

CAPACITY = 4
BACKENDS = ["threads", "processes"]

HOG = dict(width=8, leaf=0.15)  # commits all 4 workers for its tight goal
WIDE = dict(width=4, leaf=0.15)  # held: needs the whole pool at once
SMALL = dict(width=1, leaf=0.05)  # trivially feasible, loose goal


def submit_map(service, tenant, width, leaf, value=1, qos=None):
    program = sleepy_map_program(width, leaf)
    return service.submit(
        program,
        value,
        qos=qos,
        tenant=tenant,
        warm_start=sleepy_map_snapshot(program, width, leaf),
    )


def make_service(backend, **kwargs):
    kwargs.setdefault("capacity", CAPACITY)
    kwargs.setdefault("min_rebalance_interval", 0.0)
    return SkeletonService(backend=backend, **kwargs)


@pytest.mark.parametrize("backend", BACKENDS)
class TestCancelWhileHeld:
    def test_cancelled_held_head_releases_its_reservation(self, backend):
        """The regression: cancelling the held queue head must promote
        the submissions queued behind its backfill reservation."""
        with make_service(backend) as service:
            hog = submit_map(service, "hog", qos=QoS.wall_clock(0.4), **HOG)
            wide = submit_map(
                service, "wide", value=2, qos=QoS.wall_clock(0.28), **WIDE
            )
            assert wide.status() is ExecutionStatus.QUEUED
            small = submit_map(
                service, "small", value=3, qos=QoS.wall_clock(5.0), **SMALL
            )
            # Held behind the wide goal's reservation, although feasible.
            assert small.status() is ExecutionStatus.QUEUED

            assert wide.cancel() is True
            assert wide.status() is ExecutionStatus.CANCELLED
            # The promotion sweep runs synchronously inside cancel():
            # the small goal must be running before the hog finishes.
            assert small.status() is ExecutionStatus.RUNNING
            assert hog.done() is False

            with pytest.raises(ExecutionCancelledError):
                wide.result(timeout=5.0)
            assert hog.result(timeout=30.0) == 8
            assert small.result(timeout=30.0) == 3
            assert service.drain(timeout=30.0)
            assert service.stats.tenant("wide").cancelled == 1
            # Never admitted: cancel-while-held must not count a start.
            assert service.stats.tenant("wide").admitted == 0

    def test_cancel_non_head_held_record(self, backend):
        """Cancelling a held record that is *not* the head leaves the
        head's reservation (and the queue order) intact."""
        with make_service(backend) as service:
            hog = submit_map(service, "hog", qos=QoS.wall_clock(0.4), **HOG)
            wide = submit_map(
                service, "wide", value=2, qos=QoS.wall_clock(0.28), **WIDE
            )
            small = submit_map(
                service, "small", value=3, qos=QoS.wall_clock(5.0), **SMALL
            )
            assert small.status() is ExecutionStatus.QUEUED
            assert small.cancel() is True
            assert small.status() is ExecutionStatus.CANCELLED
            # The wide goal is still held (its blocker is load, not the
            # cancelled sibling) and still launches before finishing.
            assert wide.status() is ExecutionStatus.QUEUED
            assert hog.result(timeout=30.0) == 8
            assert wide.result(timeout=30.0) == 8
            assert service.drain(timeout=30.0)


@pytest.mark.parametrize("backend", BACKENDS)
class TestCancelMidRunAndAfterDone:
    def test_cancel_mid_run(self, backend):
        with make_service(backend) as service:
            handle = submit_map(
                service, "t0", width=16, leaf=0.1, qos=QoS.wall_clock(30.0)
            )
            deadline = time.monotonic() + 10.0
            while (
                handle.status() is not ExecutionStatus.RUNNING
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            assert handle.cancel() is True
            assert handle.status() is ExecutionStatus.CANCELLED
            with pytest.raises(ExecutionCancelledError):
                handle.result(timeout=10.0)
            assert service.drain(timeout=30.0)
            assert service.stats.tenant("t0").cancelled == 1

    def test_cancel_after_done_reports_the_truth(self, backend):
        with make_service(backend) as service:
            handle = submit_map(
                service, "t0", width=2, leaf=0.01, qos=QoS.wall_clock(30.0)
            )
            assert handle.result(timeout=30.0) == 2
            # The race is lost deterministically here: the future is
            # resolved, so cancel must report failure, not lie.
            assert handle.cancel() is False
            assert handle.status() is ExecutionStatus.COMPLETED
            assert service.stats.tenant("t0").cancelled == 0

    def test_cancel_is_idempotent(self, backend):
        with make_service(backend) as service:
            hog = submit_map(service, "hog", qos=QoS.wall_clock(0.4), **HOG)
            wide = submit_map(
                service, "wide", value=2, qos=QoS.wall_clock(0.28), **WIDE
            )
            assert wide.cancel() is True
            assert wide.cancel() is False  # second cancel: already done
            assert hog.result(timeout=30.0) == 8
            assert service.drain(timeout=30.0)
            assert service.stats.tenant("wide").cancelled == 1
