"""Acceptance: many concurrent tenant executions on ONE shared platform.

The ISSUE-2 acceptance scenario, run against both real backends: >= 8
concurrent executions with distinct WCT goals submitted to a single
shared ``threads`` platform and a single shared ``processes`` platform,
showing

(a) no cross-execution event/estimator contamination,
(b) the arbiter reallocating LP between executions mid-flight, and
(c) feasible goals met while an infeasible submission is rejected by
    admission control.
"""

import pytest

from repro import QoS, SkeletonService
from repro.errors import AdmissionError
from repro.events import EventRecorder
from repro.service import ExecutionStatus
from tests.conftest import (
    sleepy_chain_program,
    sleepy_chain_snapshot,
    sleepy_map_program,
    sleepy_map_snapshot,
)

pytestmark = [pytest.mark.integration, pytest.mark.slow]

N_TENANTS = 8
WIDTH = 6
LEAF = 0.03  # seconds per leaf muscle (sleep releases the GIL)
# More workers than tenants: after every tenant's floor of one worker the
# arbiter has leftover budget to redistribute by deadline urgency, so
# mid-flight reallocation is structural, not timing-dependent.
CAPACITY = 12


def distinct_goal(i: int) -> float:
    """Generous but distinct per-tenant WCT goals (robust on busy CI)."""
    return 4.0 + 0.5 * i


@pytest.fixture(params=["threads", "processes"])
def loaded_service(request):
    """One shared platform + 8 concurrent tenants + 1 infeasible tenant."""
    service = SkeletonService(backend=request.param, capacity=CAPACITY)
    recorder = EventRecorder()
    service.platform.add_listener(recorder)

    handles = []
    for i in range(N_TENANTS):
        program = sleepy_map_program(WIDTH, LEAF)
        handles.append(
            service.submit(
                program,
                i,
                qos=QoS.wall_clock(distinct_goal(i)),
                tenant=f"tenant-{i}",
                warm_start=sleepy_map_snapshot(program, WIDTH, LEAF),
            )
        )

    # A serial chain whose projected WCT exceeds its goal even with every
    # worker dedicated to it: admission must reject it up front.
    chain = sleepy_chain_program(6, 0.05)
    infeasible = service.submit(
        chain,
        0,
        qos=QoS.wall_clock(0.05),
        tenant="greedy",
        warm_start=sleepy_chain_snapshot(chain, 6, 0.05),
    )

    results = [h.result(timeout=30.0) for h in handles]
    yield service, recorder, handles, infeasible, results
    service.shutdown()


class TestSharedPlatformAcceptance:
    def test_results_correct_and_goals_met(self, loaded_service):
        service, _recorder, handles, _infeasible, results = loaded_service
        # map(replicate(i, WIDTH)) -> sum = i * WIDTH
        assert results == [i * WIDTH for i in range(N_TENANTS)]
        for handle in handles:
            assert handle.status() is ExecutionStatus.COMPLETED
            assert handle.goal_met() is True

    def test_executions_overlapped_on_one_platform(self, loaded_service):
        service, recorder, handles, _infeasible, _results = loaded_service
        # Interval overlap over leaf BEFORE/AFTER pairs across executions:
        # at some instant, leaves of >= 2 executions ran concurrently.
        spans = []
        for handle in handles:
            events = recorder.for_execution(handle.execution_id)
            befores = {}
            for e in events:
                if e.skeleton.kind != "seq":
                    continue
                if e.is_before():
                    befores[e.index] = e.timestamp
                elif e.index in befores:
                    spans.append((befores.pop(e.index), e.timestamp, handle.execution_id))
        assert spans, "no leaf spans recorded"
        overlapping_pairs = 0
        for i in range(len(spans)):
            for j in range(i + 1, len(spans)):
                s1, e1, x1 = spans[i]
                s2, e2, x2 = spans[j]
                if x1 != x2 and s1 < e2 and s2 < e1:
                    overlapping_pairs += 1
        assert overlapping_pairs > 0

    def test_no_cross_execution_event_contamination(self, loaded_service):
        service, recorder, handles, _infeasible, _results = loaded_service
        from repro.events import check_balanced

        for handle in handles:
            events = recorder.for_execution(handle.execution_id)
            assert events, f"no events for execution {handle.execution_id}"
            assert all(e.execution_id == handle.execution_id for e in events)
            # The scoped stream is a complete, balanced trace on its own.
            assert check_balanced(events)
            # Only this tenant's muscles appear in its stream.
            own = {m.uid for m in handle.program.muscles()}
            seen = {
                e.skeleton.execute.uid
                for e in events
                if e.skeleton.kind == "seq"
            }
            assert seen <= own

    def test_no_cross_execution_estimator_contamination(self, loaded_service):
        service, _recorder, handles, _infeasible, _results = loaded_service
        for handle in handles:
            analyzer = handle.analyzer
            # Exactly one root machine: the tenant's own Map — foreign
            # events would have spawned foreign machines/roots.
            assert len(analyzer.machines.roots) == 1
            assert analyzer.machines.roots[0].skel is handle.program
            # The leaf estimator folded exactly WIDTH observations (one
            # per own leaf); contamination would inflate the count.
            leaf = handle.program.subskel.execute
            estimator = analyzer.estimators.time_estimator(leaf)
            assert estimator.observations == WIDTH

    def test_arbiter_reallocates_mid_flight(self, loaded_service):
        service, _recorder, handles, _infeasible, _results = loaded_service
        assert len(service.arbiter.rebalances) >= 2
        histories = [
            service.arbiter.shares_history(h.execution_id) for h in handles
        ]
        # Every execution took part in the arbitration...
        assert all(histories)
        # ...and at least one had its share changed mid-flight.
        assert any(len(set(history)) > 1 for history in histories)
        # Shares never exceeded the platform budget in any rebalance.
        for rebalance in service.arbiter.rebalances:
            assert rebalance.total_lp <= CAPACITY
            assert all(share >= 1 for share in rebalance.shares.values())

    def test_infeasible_submission_rejected(self, loaded_service):
        service, _recorder, _handles, infeasible, _results = loaded_service
        assert infeasible.status() is ExecutionStatus.REJECTED
        assert "infeasible" in infeasible.rejected_reason
        with pytest.raises(AdmissionError, match="infeasible"):
            infeasible.result(timeout=1.0)
        greedy = service.stats.tenant("greedy")
        assert greedy.rejected == 1 and greedy.admitted == 0

    def test_stats_aggregate(self, loaded_service):
        service, _recorder, handles, _infeasible, _results = loaded_service
        assert service.stats.completed == N_TENANTS
        assert service.stats.goal_miss_rate() == 0.0
        assert service.stats.throughput() is not None
        for i in range(N_TENANTS):
            tenant = service.stats.tenant(f"tenant-{i}")
            assert tenant.submitted == tenant.admitted == tenant.completed == 1
