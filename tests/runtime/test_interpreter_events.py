"""Event-vocabulary tests: the interpreter must emit, for every pattern,
exactly the statically-defined events of the paper, properly paired,
nested and indexed."""

import pytest

from repro import (
    DivideAndConquer,
    Farm,
    For,
    Fork,
    If,
    Map,
    Pipe,
    Seq,
    While,
    run,
)
from repro.events import When, Where


def labels(recorder):
    return recorder.labels()


class TestSeqEvents:
    def test_before_after(self, sim):
        run(Seq(lambda v: v), 0, sim)
        assert labels(sim.recorder) == ["seq@b", "seq@a"]

    def test_same_index(self, sim):
        run(Seq(lambda v: v), 0, sim)
        before, after = sim.recorder.events
        assert before.index == after.index

    def test_value_payloads(self, sim):
        run(Seq(lambda v: v * 2), 5, sim)
        before, after = sim.recorder.events
        assert before.value == 5
        assert after.value == 10


class TestMapEvents:
    def test_eight_event_kinds(self, sim):
        """The paper: 'Map skeleton has eight events defined'."""
        skel = Map(lambda v: [v, v], Seq(lambda v: v), sum)
        run(skel, 0, sim)
        seen = {e.label for e in sim.recorder.events if e.kind == "map"}
        assert seen == {
            "map@b", "map@bs", "map@as", "map@bn", "map@an",
            "map@bm", "map@am", "map@a",
        }

    def test_fs_card_on_after_split(self, sim):
        skel = Map(lambda v: [v, v, v], Seq(lambda v: v), sum)
        run(skel, 0, sim)
        after_split = sim.recorder.first(kind="map", when=When.AFTER, where=Where.SPLIT)
        assert after_split.extra["fs_card"] == 3

    def test_nested_markers_per_child(self, sim):
        skel = Map(lambda v: [v, v, v], Seq(lambda v: v), sum)
        run(skel, 0, sim)
        bn = sim.recorder.select(kind="map", when=When.BEFORE, where=Where.NESTED)
        assert sorted(e.extra["child"] for e in bn) == [0, 1, 2]

    def test_order_b_bs_as_then_bm_am_a(self, sim):
        skel = Map(lambda v: [v], Seq(lambda v: v), sum)
        run(skel, 0, sim)
        ls = [e.label for e in sim.recorder.events if e.kind == "map"]
        assert ls.index("map@b") < ls.index("map@bs") < ls.index("map@as")
        assert ls.index("map@as") < ls.index("map@bm") < ls.index("map@am")
        assert ls.index("map@am") < ls.index("map@a")

    def test_balanced(self, sim):
        skel = Map(lambda v: [v, v], Seq(lambda v: v), sum)
        run(skel, 0, sim)
        assert sim.recorder.is_balanced()


class TestWhileEvents:
    def test_condition_events_with_results(self, sim):
        skel = While(lambda v: v < 2, Seq(lambda v: v + 1))
        run(skel, 0, sim)
        acs = sim.recorder.select(kind="while", when=When.AFTER, where=Where.CONDITION)
        assert [e.extra["cond_result"] for e in acs] == [True, True, False]
        assert [e.extra["iteration"] for e in acs] == [0, 1, 2]

    def test_payload_is_value_not_pair(self, sim):
        skel = While(lambda v: v < 2, Seq(lambda v: v + 1))
        run(skel, 0, sim)
        for e in sim.recorder.select(kind="while", where=Where.CONDITION):
            assert isinstance(e.value, int)

    def test_zero_iterations(self, sim):
        skel = While(lambda v: False, Seq(lambda v: v + 1))
        assert run(skel, 9, sim) == 9
        acs = sim.recorder.select(kind="while", where=Where.CONDITION, when=When.AFTER)
        assert len(acs) == 1


class TestForEvents:
    def test_iteration_markers(self, sim):
        run(For(3, Seq(lambda v: v)), 0, sim)
        bn = sim.recorder.select(kind="for", when=When.BEFORE, where=Where.NESTED)
        assert [e.extra["iteration"] for e in bn] == [0, 1, 2]

    def test_zero_trip(self, sim):
        assert run(For(0, Seq(lambda v: v + 1)), 5, sim) == 5
        assert labels(sim.recorder) == ["for@b", "for@a"]


class TestIfEvents:
    def test_condition_result_true(self, sim):
        skel = If(lambda v: v > 0, Seq(lambda v: "t"), Seq(lambda v: "f"))
        run(skel, 1, sim)
        ac = sim.recorder.first(kind="if", when=When.AFTER, where=Where.CONDITION)
        assert ac.extra["cond_result"] is True

    def test_only_taken_branch_runs(self, sim):
        skel = If(lambda v: v > 0, Seq(lambda v: "t"), Seq(lambda v: "f"))
        run(skel, -1, sim)
        seqs = sim.recorder.select(kind="seq")
        assert len(seqs) == 2  # one seq instance only (before+after)


class TestPipeEvents:
    def test_stage_markers(self, sim):
        skel = Pipe(Seq(lambda v: v), Seq(lambda v: v), Seq(lambda v: v))
        run(skel, 0, sim)
        bn = sim.recorder.select(kind="pipe", when=When.BEFORE, where=Where.NESTED)
        assert [e.extra["stage"] for e in bn] == [0, 1, 2]


class TestFarmEvents:
    def test_wraps_nested(self, sim):
        run(Farm(Seq(lambda v: v)), 0, sim)
        assert labels(sim.recorder) == ["farm@b", "seq@b", "seq@a", "farm@a"]


class TestForkEvents:
    def test_mirrors_map(self, sim):
        skel = Fork(lambda v: [v, v], [Seq(lambda v: v), Seq(lambda v: v + 1)], sum)
        run(skel, 0, sim)
        seen = {e.label for e in sim.recorder.events if e.kind == "fork"}
        assert seen == {
            "fork@b", "fork@bs", "fork@as", "fork@bn", "fork@an",
            "fork@bm", "fork@am", "fork@a",
        }

    def test_mismatch_fails(self, sim):
        from repro.errors import ExecutionError

        skel = Fork(lambda v: [v], [Seq(lambda v: v), Seq(lambda v: v)], sum)
        with pytest.raises(ExecutionError):
            run(skel, 0, sim)


class TestDacEvents:
    def make(self):
        return DivideAndConquer(
            lambda v: v >= 2,
            lambda v: [v // 2, v - v // 2 - 1],
            Seq(lambda v: v),
            sum,
        )

    def test_depth_extras(self, sim):
        run(self.make(), 4, sim)
        depths = {
            e.extra["depth"]
            for e in sim.recorder.select(kind="dac", where=Where.CONDITION)
        }
        assert 0 in depths and max(depths) >= 1

    def test_cond_results(self, sim):
        run(self.make(), 1, sim)  # leaf at root
        ac = sim.recorder.first(kind="dac", when=When.AFTER, where=Where.CONDITION)
        assert ac.extra["cond_result"] is False

    def test_each_node_has_own_index(self, sim):
        run(self.make(), 4, sim)
        indices = {
            e.index for e in sim.recorder.select(kind="dac", where=Where.CONDITION)
        }
        assert len(indices) >= 3  # root + at least two children


class TestTraces:
    def test_trace_and_index_trace_align(self, sim):
        skel = Map(lambda v: [v], Seq(lambda v: v), sum)
        run(skel, 0, sim)
        for e in sim.recorder.events:
            assert len(e.trace) == len(e.index_trace)
            assert e.trace[-1] is e.skeleton
            assert e.index_trace[-1] == e.index

    def test_nested_trace_depth(self, sim):
        skel = Map(lambda v: [v], Seq(lambda v: v), sum)
        run(skel, 0, sim)
        seq_event = sim.recorder.first(kind="seq")
        assert [s.kind for s in seq_event.trace] == ["map", "seq"]

    def test_parent_index_links(self, sim):
        skel = Map(lambda v: [v], Seq(lambda v: v), sum)
        run(skel, 0, sim)
        map_event = sim.recorder.first(kind="map")
        seq_event = sim.recorder.first(kind="seq")
        assert seq_event.parent_index == map_event.index


class TestValueTransformation:
    def test_listener_rewrites_partial_solution(self, sim):
        # The paper's "modify partial solutions" use case: double every
        # sub-result as it leaves the nested skeleton.
        skel = Map(lambda v: [1, 2, 3], Seq(lambda v: v), sum)
        sim.bus.add_callback(
            lambda e: e.value * 10,
            kind="map", when=When.AFTER, where=Where.NESTED,
        )
        assert run(skel, 0, sim) == 60
