"""Unit tests for skeleton futures."""

import threading

import pytest

from repro.errors import ExecutionError
from repro.runtime.futures import SkeletonFuture


class TestResolution:
    def test_set_result(self):
        f = SkeletonFuture()
        f.set_result(42)
        assert f.done()
        assert f.get() == 42

    def test_set_exception(self):
        f = SkeletonFuture()
        f.set_exception(ValueError("boom"))
        with pytest.raises(ValueError):
            f.get()
        assert isinstance(f.exception(), ValueError)

    def test_double_resolve_rejected(self):
        f = SkeletonFuture()
        f.set_result(1)
        with pytest.raises(ExecutionError):
            f.set_result(2)
        with pytest.raises(ExecutionError):
            f.set_exception(ValueError())

    def test_timeout(self):
        f = SkeletonFuture()
        with pytest.raises(TimeoutError):
            f.get(timeout=0.01)

    def test_exception_none_on_success(self):
        f = SkeletonFuture()
        f.set_result(1)
        assert f.exception() is None


class TestCallbacks:
    def test_callback_after_resolve(self):
        f = SkeletonFuture()
        seen = []
        f.add_done_callback(lambda fut: seen.append(fut.get()))
        f.set_result(7)
        assert seen == [7]

    def test_callback_when_already_done(self):
        f = SkeletonFuture()
        f.set_result(7)
        seen = []
        f.add_done_callback(lambda fut: seen.append(True))
        assert seen == [True]


class TestDriver:
    def test_driver_invoked_on_get(self):
        calls = []

        def driver(fut):
            calls.append(True)
            fut.set_result(99)

        f = SkeletonFuture(driver=driver)
        assert f.get() == 99
        assert calls == [True]

    def test_driver_skipped_when_done(self):
        calls = []
        f = SkeletonFuture(driver=lambda fut: calls.append(True))
        f.set_result(1)
        assert f.get() == 1
        assert calls == []


class TestThreading:
    def test_cross_thread_resolution(self):
        f = SkeletonFuture()
        threading.Thread(target=lambda: f.set_result("done")).start()
        assert f.get(timeout=2.0) == "done"


class TestWaitAsync:
    """The asyncio bridge used by the service's async handle facade."""

    def test_already_resolved_returns_immediately(self):
        import asyncio

        f = SkeletonFuture()
        f.set_result(7)
        assert asyncio.run(f.wait_async()) is True
        assert f.get() == 7

    def test_wakes_on_cross_thread_resolution(self):
        import asyncio

        f = SkeletonFuture()

        async def main():
            threading.Timer(0.05, lambda: f.set_result("done")).start()
            return await f.wait_async()

        assert asyncio.run(main()) is True
        assert f.get() == "done"

    def test_timeout_returns_false_without_raising(self):
        import asyncio

        f = SkeletonFuture()

        async def main():
            return await f.wait_async(timeout=0.02)

        assert asyncio.run(main()) is False
        assert not f.done()
        # a later resolution must not explode on the closed event loop
        f.set_result(1)
        assert f.get() == 1

    def test_exception_propagates_through_get_after_await(self):
        import asyncio

        f = SkeletonFuture()

        async def main():
            threading.Timer(0.02, lambda: f.set_exception(ValueError("x"))).start()
            await f.wait_async()
            return f.exception(timeout=0)

        assert isinstance(asyncio.run(main()), ValueError)

    def test_driver_backed_future_drives_synchronously(self):
        import asyncio

        def driver(future):
            future.set_result("driven")

        f = SkeletonFuture(driver=driver)

        async def main():
            await f.wait_async()
            return f.get(timeout=0)

        assert asyncio.run(main()) == "driven"

    def test_timed_out_waiters_are_deregistered(self):
        """Polling consumers must not grow the callback list unboundedly."""
        import asyncio

        f = SkeletonFuture()

        async def poll():
            for _ in range(5):
                assert await f.wait_async(timeout=0.001) is False

        asyncio.run(poll())
        assert f._callbacks == []  # every timed-out waiter cleaned up
        f.set_result(1)

    def test_remove_done_callback(self):
        f = SkeletonFuture()
        hits = []
        f.add_done_callback(hits.append)
        assert f.remove_done_callback(hits.append) is True
        assert f.remove_done_callback(hits.append) is False  # already gone
        f.set_result(1)
        assert hits == []

    def test_cancelled_await_deregisters(self):
        """asyncio.wait_for cancels the await mid-flight; the done
        callback must not survive it (regression: unbounded growth)."""
        import asyncio

        f = SkeletonFuture()

        async def main():
            for _ in range(5):
                with pytest.raises(asyncio.TimeoutError):
                    await asyncio.wait_for(f.wait_async(), timeout=0.001)

        asyncio.run(main())
        assert f._callbacks == []
        f.set_result(1)
