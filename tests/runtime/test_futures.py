"""Unit tests for skeleton futures."""

import threading

import pytest

from repro.errors import ExecutionError
from repro.runtime.futures import SkeletonFuture


class TestResolution:
    def test_set_result(self):
        f = SkeletonFuture()
        f.set_result(42)
        assert f.done()
        assert f.get() == 42

    def test_set_exception(self):
        f = SkeletonFuture()
        f.set_exception(ValueError("boom"))
        with pytest.raises(ValueError):
            f.get()
        assert isinstance(f.exception(), ValueError)

    def test_double_resolve_rejected(self):
        f = SkeletonFuture()
        f.set_result(1)
        with pytest.raises(ExecutionError):
            f.set_result(2)
        with pytest.raises(ExecutionError):
            f.set_exception(ValueError())

    def test_timeout(self):
        f = SkeletonFuture()
        with pytest.raises(TimeoutError):
            f.get(timeout=0.01)

    def test_exception_none_on_success(self):
        f = SkeletonFuture()
        f.set_result(1)
        assert f.exception() is None


class TestCallbacks:
    def test_callback_after_resolve(self):
        f = SkeletonFuture()
        seen = []
        f.add_done_callback(lambda fut: seen.append(fut.get()))
        f.set_result(7)
        assert seen == [7]

    def test_callback_when_already_done(self):
        f = SkeletonFuture()
        f.set_result(7)
        seen = []
        f.add_done_callback(lambda fut: seen.append(True))
        assert seen == [True]


class TestDriver:
    def test_driver_invoked_on_get(self):
        calls = []

        def driver(fut):
            calls.append(True)
            fut.set_result(99)

        f = SkeletonFuture(driver=driver)
        assert f.get() == 99
        assert calls == [True]

    def test_driver_skipped_when_done(self):
        calls = []
        f = SkeletonFuture(driver=lambda fut: calls.append(True))
        f.set_result(1)
        assert f.get() == 1
        assert calls == []


class TestThreading:
    def test_cross_thread_resolution(self):
        f = SkeletonFuture()
        threading.Thread(target=lambda: f.set_result("done")).start()
        assert f.get(timeout=2.0) == "done"
