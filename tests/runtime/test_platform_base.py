"""Unit tests for the Platform base class contract."""

import pytest

from repro.errors import PlatformError
from repro.runtime.clock import VirtualClock
from repro.runtime.platform import Platform


def make(parallelism=2, max_parallelism=8, clock=True):
    return Platform(
        parallelism=parallelism,
        max_parallelism=max_parallelism,
        clock=VirtualClock() if clock else None,
    )


class TestValidation:
    def test_rejects_zero_parallelism(self):
        with pytest.raises(PlatformError):
            Platform(parallelism=0)

    def test_rejects_max_below_initial(self):
        with pytest.raises(PlatformError):
            Platform(parallelism=4, max_parallelism=2)

    def test_clockless_now_raises(self):
        platform = make(clock=False)
        with pytest.raises(PlatformError):
            platform.now()


class TestParallelismClamping:
    def test_clamps_low(self):
        assert make().set_parallelism(-5) == 1

    def test_clamps_high(self):
        assert make(max_parallelism=8).set_parallelism(100) == 8

    def test_unbounded_when_no_max(self):
        platform = Platform(parallelism=1, clock=VirtualClock())
        assert platform.set_parallelism(1000) == 1000

    def test_get_reflects_set(self):
        platform = make()
        platform.set_parallelism(5)
        assert platform.get_parallelism() == 5


class TestBaseBehaviour:
    def test_submit_abstract(self):
        with pytest.raises(NotImplementedError):
            make().submit(None)

    def test_current_worker_default_none(self):
        assert make().current_worker() is None

    def test_context_manager_calls_shutdown(self):
        calls = []

        class P(Platform):
            def shutdown(self):
                calls.append(True)

        with P(parallelism=1, clock=VirtualClock()):
            pass
        assert calls == [True]

    def test_indices_platform_scoped(self):
        platform = make()
        a = platform.indices.next()
        b = platform.indices.next()
        assert b == a + 1

    def test_add_listener_rejects_non_listener(self):
        with pytest.raises(TypeError):
            make().add_listener(lambda e: e)
