"""Unit tests for cost models."""

import pytest

from repro.runtime.costmodel import (
    CallableCostModel,
    ConstantCostModel,
    PerItemCostModel,
    TableCostModel,
    ZeroCostModel,
)
from repro.skeletons.muscles import Execute


def muscle(name="m"):
    return Execute(lambda v: v, name=name)


class TestZeroAndConstant:
    def test_zero(self):
        assert ZeroCostModel().duration(muscle(), 1) == 0.0

    def test_constant(self):
        assert ConstantCostModel(2.5).duration(muscle(), None) == 2.5

    def test_constant_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantCostModel(-1.0)


class TestTable:
    def test_lookup_by_object(self):
        m = muscle()
        assert TableCostModel({m: 3.0}).duration(m, None) == 3.0

    def test_lookup_by_uid(self):
        m = muscle()
        assert TableCostModel({m.uid: 4.0}).duration(m, None) == 4.0

    def test_lookup_by_name(self):
        m = muscle("special")
        assert TableCostModel({"special": 5.0}).duration(m, None) == 5.0

    def test_callable_cost_entry(self):
        m = muscle()
        model = TableCostModel({m: lambda v: 0.1 * v})
        assert model.duration(m, 30) == pytest.approx(3.0)

    def test_default_fallback(self):
        assert TableCostModel({}, default=1.5).duration(muscle(), None) == 1.5

    def test_missing_raises(self):
        with pytest.raises(KeyError):
            TableCostModel({}).duration(muscle(), None)

    def test_bad_key_rejected(self):
        with pytest.raises(TypeError):
            TableCostModel({3.14: 1.0})

    def test_negative_duration_rejected(self):
        m = muscle()
        with pytest.raises(ValueError):
            TableCostModel({m: -2.0}).duration(m, None)


class TestCallable:
    def test_computed(self):
        model = CallableCostModel(lambda m, v: len(v) * 0.5)
        assert model.duration(muscle(), [1, 2]) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CallableCostModel(lambda m, v: -1.0).duration(muscle(), None)


class TestPerItem:
    def test_len_based(self):
        model = PerItemCostModel(per_item=0.1, overhead=1.0)
        assert model.duration(muscle(), [1, 2, 3]) == pytest.approx(1.3)

    def test_scalar_counts_as_one(self):
        model = PerItemCostModel(per_item=0.1)
        assert model.duration(muscle(), 42) == pytest.approx(0.1)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            PerItemCostModel(per_item=-0.1)
