"""Worker-side start timestamps on the process backend (ROADMAP item).

BEFORE events of chunk-batched tasks are *published* at handoff (listener
value transforms must run before the value ships), but each result now
carries the worker-observed start of the body; the platform threads it
into the AFTER events' ``started_at`` extra and the tracking machines use
it for estimator spans.  Without the correction, the k-th task of a chunk
of n sleeps would observe a span of ~k x sleep; with it, every span is
~1 x sleep.
"""

from functools import partial

import pytest

from repro import Map, Merge, ProcessPoolPlatform, Seq, Split
from repro.core.analysis import ExecutionAnalyzer
from repro.events import EventRecorder, When
from repro.runtime.interpreter import submit
from repro.skeletons import Condition, Execute, While

from tests.conftest import px_replicate, px_sleep_echo, px_sum

pytestmark = pytest.mark.integration

SLEEP = 0.05
WIDTH = 8


def chunked_sleep_map():
    return Map(
        Split(partial(px_replicate, width=WIDTH), name="ts_split"),
        Seq(Execute(partial(px_sleep_echo, duration=SLEEP), name="ts_leaf")),
        Merge(px_sum, name="ts_merge"),
    )


@pytest.fixture
def single_worker_platform():
    # One worker + a chunk as wide as the map: maximal residence skew.
    platform = ProcessPoolPlatform(
        parallelism=1, max_parallelism=2, chunk_size=WIDTH
    )
    yield platform
    platform.shutdown()


class TestWorkerSideSpans:
    def test_estimator_span_tracks_muscle_not_chunk_residence(
        self, single_worker_platform
    ):
        platform = single_worker_platform
        analyzer = ExecutionAnalyzer()
        platform.add_listener(analyzer)
        program = chunked_sleep_map()
        assert submit(program, 1, platform).get(timeout=30.0) == WIDTH
        leaf_estimate = analyzer.estimators.t(program.subskel.execute)
        # Without worker-side stamps the blended estimate lands in the
        # multiple-of-SLEEP range (chunk residence); with them it tracks
        # the actual sleep.
        assert leaf_estimate == pytest.approx(SLEEP, abs=SLEEP)
        assert leaf_estimate < 2.5 * SLEEP

    def test_after_events_carry_started_at(self, single_worker_platform):
        platform = single_worker_platform
        recorder = EventRecorder()
        platform.add_listener(recorder)
        assert submit(chunked_sleep_map(), 1, platform).get(timeout=30.0) == WIDTH
        leaf_afters = recorder.select(kind="seq", when=When.AFTER)
        assert leaf_afters
        for event in leaf_afters:
            started = event.extra.get("started_at")
            assert started is not None
            # Start is on the platform clock, before the event itself.
            assert 0.0 <= started <= event.timestamp

    def test_condition_spans_corrected_too(self, single_worker_platform):
        platform = single_worker_platform
        analyzer = ExecutionAnalyzer()
        platform.add_listener(analyzer)
        program = While(
            Condition(partial(_below_three), name="ts_cond"),
            Seq(Execute(partial(px_sleep_echo, duration=0.01), name="ts_body")),
        )
        # Value-driven: increments via the pipe below; keep it tiny.
        future = submit(
            program,
            0,
            platform,
        )
        future.get(timeout=30.0)
        estimate = analyzer.estimators.t(program.condition)
        assert estimate < 0.05  # conditions are near-instant


def _below_three(v):
    return False  # single evaluation; the span itself is what matters
