"""Unit tests for the resizable thread-pool platform (real threads)."""

import threading
import time

import pytest

from repro import Map, Merge, Seq, Split, ThreadPoolPlatform, run
from repro.errors import MuscleExecutionError, PlatformError
from repro.events import LatchListener, When, Where
from repro.skeletons import sequential_evaluate


def wide_map(width=4, work=None):
    work = work or (lambda v: v * 2)
    return Map(
        Split(lambda v: [v + i for i in range(width)], name="w"),
        Seq(work),
        Merge(sum, name="sum"),
    )


class TestBasics:
    def test_result_matches_reference(self, pool):
        skel = wide_map(5)
        assert run(skel, 10, pool) == sequential_evaluate(wide_map(5), 10)

    def test_many_executions(self, pool):
        skel = wide_map(3)
        results = [run(skel, i, pool) for i in range(10)]
        assert results == [sequential_evaluate(wide_map(3), i) for i in range(10)]

    def test_concurrent_submissions(self, pool):
        skel = wide_map(3)
        futures = [pool_submit(pool, skel, i) for i in range(8)]
        for i, f in enumerate(futures):
            assert f.get(timeout=10) == sequential_evaluate(wide_map(3), i)

    def test_muscle_error_propagates(self, pool):
        with pytest.raises(MuscleExecutionError):
            run(Seq(lambda v: 1 / 0), 0, pool)

    def test_pool_usable_after_error(self, pool):
        with pytest.raises(MuscleExecutionError):
            run(Seq(lambda v: 1 / 0), 0, pool)
        assert run(Seq(lambda v: v + 1), 1, pool) == 2


def pool_submit(pool, skel, value):
    from repro.runtime.interpreter import submit

    return submit(skel, value, pool)


class TestParallelExecution:
    def test_work_actually_overlaps(self):
        # Two sleeping muscles on two threads should take ~1x sleep, not 2x.
        barrier = threading.Barrier(2, timeout=5)

        def wait_both(v):
            barrier.wait()  # deadlocks unless both run concurrently
            return v

        skel = wide_map(2, work=wait_both)
        with ThreadPoolPlatform(parallelism=2) as pool:
            assert run(skel, 0, pool) == 0 + 1

    def test_events_on_worker_threads(self, pool):
        latch = LatchListener(
            lambda e: e.matches(when=When.AFTER, where=Where.MERGE)
            and e.worker is not None
        )
        pool.add_listener(latch)
        run(wide_map(3), 0, pool)
        assert latch.wait(timeout=5)


class TestResize:
    def test_grow_spawns_workers(self):
        with ThreadPoolPlatform(parallelism=1, max_parallelism=8) as pool:
            pool.set_parallelism(4)
            deadline = time.time() + 5
            while pool.live_workers < 4 and time.time() < deadline:
                time.sleep(0.01)
            assert pool.live_workers == 4

    def test_shrink_retires_idle_workers(self):
        with ThreadPoolPlatform(parallelism=4, max_parallelism=8) as pool:
            pool.set_parallelism(1)
            deadline = time.time() + 5
            while pool.live_workers > 1 and time.time() < deadline:
                time.sleep(0.01)
            assert pool.live_workers == 1

    def test_clamped_to_max(self):
        with ThreadPoolPlatform(parallelism=1, max_parallelism=3) as pool:
            assert pool.set_parallelism(99) == 3

    def test_invalid_initial_parallelism(self):
        with pytest.raises(PlatformError):
            ThreadPoolPlatform(parallelism=0)

    def test_max_below_initial_rejected(self):
        with pytest.raises(PlatformError):
            ThreadPoolPlatform(parallelism=4, max_parallelism=2)


class TestShutdown:
    def test_shutdown_joins_workers(self):
        pool = ThreadPoolPlatform(parallelism=3)
        run(wide_map(3), 0, pool)
        pool.shutdown()
        assert pool.live_workers == 0

    def test_submit_after_shutdown_raises(self):
        pool = ThreadPoolPlatform(parallelism=1)
        pool.shutdown()
        with pytest.raises(PlatformError):
            run(Seq(lambda v: v), 0, pool)

    def test_context_manager(self):
        with ThreadPoolPlatform(parallelism=2) as pool:
            assert run(Seq(lambda v: v * 3), 2, pool) == 6
