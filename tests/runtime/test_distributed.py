"""Unit/integration tests for the simulated distributed platform."""

import pytest

from repro import (
    Execute,
    Map,
    Merge,
    Seq,
    SimulatedDistributedPlatform,
    SimulatedPlatform,
    Split,
    run,
)
from repro.core.controller import AutonomicController
from repro.core.qos import QoS
from repro.errors import PlatformError
from repro.runtime.costmodel import ConstantCostModel


def wide_map(width=4):
    return Map(
        Split(lambda v: [v + i for i in range(width)], name="w"),
        Seq(Execute(lambda v: v * 2, name="dbl")),
        Merge(sum, name="sum"),
    )


class TestConstruction:
    def test_rejects_negative_latency(self):
        with pytest.raises(PlatformError):
            SimulatedDistributedPlatform(dispatch_latency=-1)
        with pytest.raises(PlatformError):
            SimulatedDistributedPlatform(collect_latency=-0.5)

    def test_rejects_nonpositive_speed(self):
        with pytest.raises(PlatformError):
            SimulatedDistributedPlatform(worker_speeds=[1.0, 0.0])

    def test_round_trip_overhead(self):
        plat = SimulatedDistributedPlatform(
            dispatch_latency=0.1, collect_latency=0.2
        )
        assert plat.round_trip_overhead() == pytest.approx(0.3)


class TestCostSemantics:
    def test_zero_latency_matches_base_simulator(self):
        base = SimulatedPlatform(parallelism=2, cost_model=ConstantCostModel(1.0))
        dist = SimulatedDistributedPlatform(
            parallelism=2, cost_model=ConstantCostModel(1.0)
        )
        assert run(wide_map(4), 0, base) == run(wide_map(4), 0, dist)
        assert base.now() == dist.now()

    def test_latency_inflates_makespan(self):
        # 6 tasks on one worker: each pays 0.1 + 1.0 + 0.1.
        plat = SimulatedDistributedPlatform(
            parallelism=1, cost_model=ConstantCostModel(1.0),
            dispatch_latency=0.1, collect_latency=0.1,
        )
        run(wide_map(4), 0, plat)
        assert plat.now() == pytest.approx(6 * 1.2)

    def test_worker_speeds(self):
        # Two workers: fast (2x) and slow (0.5x). A 1 s task takes 0.5 s on
        # worker 0 and 2 s on worker 1.
        plat = SimulatedDistributedPlatform(
            parallelism=2, cost_model=ConstantCostModel(1.0),
            worker_speeds=[2.0, 0.5],
        )
        assert plat.worker_speed(0) == 2.0
        assert plat.worker_speed(1) == 0.5
        assert plat.worker_speed(7) == 0.5  # tail speed extends

    def test_heterogeneous_makespan(self):
        plat = SimulatedDistributedPlatform(
            parallelism=1, cost_model=ConstantCostModel(1.0),
            worker_speeds=[2.0],
        )
        run(Seq(lambda v: v), 0, plat)
        assert plat.now() == pytest.approx(0.5)

    def test_functional_result_unchanged(self):
        plat = SimulatedDistributedPlatform(
            parallelism=3, cost_model=ConstantCostModel(1.0),
            dispatch_latency=0.05, collect_latency=0.05,
        )
        assert run(wide_map(5), 10, plat) == sum((10 + i) * 2 for i in range(5))


class TestAutonomicOnDistributed:
    """The paper's platform-independence claim: the unchanged controller
    drives worker enrollment exactly like thread allocation."""

    def make(self, latency):
        fs = Split(lambda xs: [xs] * 8, name="fs")
        fe = Execute(lambda xs: 1, name="fe")
        fm = Merge(sum, name="fm")
        skel = Map(fs, Seq(fe), fm)
        from repro.runtime.costmodel import TableCostModel

        costs = TableCostModel({fs: 0.5, fe: 2.0, fm: 0.1})
        plat = SimulatedDistributedPlatform(
            parallelism=1, cost_model=costs, max_parallelism=8,
            dispatch_latency=latency, collect_latency=latency,
        )
        ctrl = AutonomicController(plat, skel, qos=QoS.wall_clock(7.0, max_lp=8))
        # fm runs last in a single-level map: warm-start it.
        ctrl.estimators.time_estimator(fm).initialize(0.1 + 2 * latency)
        return skel, plat, ctrl

    def test_controller_enrolls_workers(self):
        skel, plat, ctrl = self.make(latency=0.0)
        # sequential: 0.5 + 8*2 + 0.1 = 16.6 > 7 -> must grow.
        result = skel.compute([1], platform=plat)
        assert result == 8
        assert plat.now() <= 7.0 + 1e-9
        assert plat.metrics.peak_active() > 1

    def test_goal_still_met_under_latency(self):
        skel, plat, ctrl = self.make(latency=0.1)
        result = skel.compute([1], platform=plat)
        assert result == 8
        assert plat.now() <= 7.0 + 1e-9

    def test_estimators_absorb_communication(self):
        """Observed t(m) includes the round trip, so planning stays honest."""
        skel, plat, ctrl = self.make(latency=0.25)
        skel.compute([1], platform=plat)
        fe = skel.subskel.execute
        # true compute 2.0 + 0.5 round trip
        assert ctrl.estimators.t(fe) == pytest.approx(2.5)
