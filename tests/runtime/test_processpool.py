"""Unit tests for ProcessPoolPlatform and the serialization envelope."""

import pickle
import time
from functools import partial

import pytest

from repro import (
    Execute,
    Map,
    Merge,
    MuscleExecutionError,
    PlatformError,
    ProcessPoolPlatform,
    Seq,
    Split,
    run,
)
from repro.events import EventRecorder
from repro.runtime.interpreter import submit
from repro.runtime.task import ConditionBody, TaskEnvelope
from repro.skeletons import sequential_evaluate
from tests.conftest import px_below, px_inc, px_iota, px_leaf


def _boom(v):
    raise ValueError(f"kaboom({v})")


def _make_map(width):
    return Map(
        Split(partial(px_iota, width=width), name="fs"),
        Seq(Execute(px_inc, name="fe")),
        Merge(sum, name="fm"),
    )


@pytest.fixture
def procs():
    platform = ProcessPoolPlatform(parallelism=2, max_parallelism=8)
    recorder = EventRecorder()
    platform.add_listener(recorder)
    platform.recorder = recorder
    yield platform
    platform.shutdown()


class TestEnvelope:
    def test_condition_body_pairs_value_with_flag(self):
        body = ConditionBody(partial(px_below, bound=5))
        assert body(3) == (3, True)
        assert body(9) == (9, False)

    def test_condition_body_round_trips_pickle(self):
        body = pickle.loads(pickle.dumps(ConditionBody(partial(px_below, bound=5))))
        assert body(4) == (4, True)

    def test_envelope_round_trip(self):
        env = TaskEnvelope(partial(px_leaf, k=3), 10, "leaf")
        clone = TaskEnvelope.decode(env.encode())
        assert clone.run() == 23
        assert clone.muscle_name == "leaf"

    def test_envelope_encode_rejects_closures(self):
        env = TaskEnvelope(lambda v: v, 1, "lam")
        with pytest.raises(PlatformError, match="not picklable"):
            env.encode()

    def test_envelope_run_wraps_user_errors(self):
        env = TaskEnvelope(_boom, 1, "boom")
        with pytest.raises(MuscleExecutionError) as excinfo:
            env.run()
        assert excinfo.value.muscle_name == "boom"
        assert isinstance(excinfo.value.cause, ValueError)

    def test_muscle_execution_error_round_trips_pickle(self):
        original = MuscleExecutionError("boom", ValueError("kaboom"), trace=())
        clone = pickle.loads(pickle.dumps(original))
        assert clone.muscle_name == "boom"
        assert isinstance(clone.cause, ValueError)
        assert str(clone.cause) == "kaboom"


class TestProcessPool:
    def test_simple_map(self, procs):
        program = _make_map(10)
        assert run(program, 5, procs) == sequential_evaluate(_make_map(10), 5)

    def test_events_balanced_and_carry_worker_ids(self, procs):
        run(_make_map(6), 3, procs)
        assert procs.recorder.is_balanced()
        workers = {e.worker for e in procs.recorder.events if e.label == "seq@a"}
        assert workers, "muscle AFTER events must carry a worker id"
        assert all(isinstance(w, int) for w in workers)

    def test_unpicklable_muscle_fails_with_clear_error(self, procs):
        program = Seq(Execute(lambda v: v + 1, name="lam"))
        with pytest.raises(PlatformError, match="not picklable"):
            run(program, 1, procs)

    def test_muscle_exception_propagates_with_cause(self, procs):
        with pytest.raises(MuscleExecutionError) as excinfo:
            run(Seq(Execute(_boom, name="boom")), 7, procs)
        assert excinfo.value.muscle_name == "boom"
        assert isinstance(excinfo.value.cause, ValueError)
        assert "kaboom(7)" in str(excinfo.value.cause)

    def test_failure_skips_remaining_tasks(self, procs):
        program = Map(
            Split(partial(px_iota, width=6), name="fs"),
            Seq(Execute(_boom, name="boom")),
            Merge(sum, name="fm"),
        )
        future = submit(program, 0, procs)
        with pytest.raises(MuscleExecutionError):
            future.get(timeout=30)

    def test_chunking_many_fine_grained_tasks(self):
        with ProcessPoolPlatform(parallelism=2, chunk_size=4) as pool:
            program = _make_map(40)
            assert run(program, 1, pool) == sequential_evaluate(_make_map(40), 1)

    def test_chunk_size_validated(self):
        with pytest.raises(PlatformError):
            ProcessPoolPlatform(parallelism=1, chunk_size=0)

    def test_live_grow_and_graceful_shrink(self, procs):
        futures = [submit(_make_map(8), v, procs) for v in range(10)]
        procs.set_parallelism(6)
        expected = [sequential_evaluate(_make_map(8), v) for v in range(10)]
        assert [f.get(timeout=60) for f in futures] == expected
        procs.set_parallelism(1)
        deadline = time.time() + 10
        while procs.live_workers != 1 and time.time() < deadline:
            time.sleep(0.02)
        assert procs.live_workers == 1

    def test_metrics_track_active_within_allocation(self, procs):
        for v in range(4):
            run(_make_map(5), v, procs)
        for sample in procs.metrics.samples:
            assert 0 <= sample.active <= 8

    def test_current_worker_is_none_outside_tasks(self, procs):
        assert procs.current_worker() is None

    def test_submit_after_shutdown_raises(self):
        pool = ProcessPoolPlatform(parallelism=1)
        pool.shutdown()
        pool.shutdown()  # idempotent
        with pytest.raises(PlatformError):
            run(Seq(Execute(px_inc, name="fe")), 1, pool)

    def test_worker_killed_mid_flight_never_strands_futures(self, procs):
        """SIGKILLing a worker resolves every future (result or clean
        PlatformError) and the pool self-heals to its target size."""
        import os
        import signal

        futures = [submit(_make_map(6), v, procs) for v in range(6)]
        with procs._cv:
            victims = [h.process.pid for h in procs._workers.values()]
        os.kill(victims[0], signal.SIGKILL)
        outcomes = 0
        for future in futures:
            try:
                future.get(timeout=30)
            except PlatformError:
                pass
            outcomes += 1
        assert outcomes == len(futures)
        deadline = time.time() + 10
        while procs.live_workers != 2 and time.time() < deadline:
            time.sleep(0.02)
        assert procs.live_workers == 2

    def test_concurrent_executions(self, procs):
        futures = [submit(_make_map(w), v, procs) for v in range(5) for w in (1, 3, 7)]
        expected = [
            sequential_evaluate(_make_map(w), v) for v in range(5) for w in (1, 3, 7)
        ]
        assert [f.get(timeout=60) for f in futures] == expected
