"""Unit tests for the discrete-event simulator platform."""

import pytest

from repro import (
    EventRecorder,
    Execute,
    Map,
    Merge,
    Seq,
    SimulatedPlatform,
    Split,
    run,
)
from repro.errors import MuscleExecutionError, PlatformError
from repro.runtime.costmodel import ConstantCostModel, TableCostModel
from repro.skeletons import sequential_evaluate


def wide_map(width=4):
    return Map(
        Split(lambda v: [v + i for i in range(width)], name="w"),
        Seq(Execute(lambda v: v * 2, name="dbl")),
        Merge(sum, name="sum"),
    )


class TestVirtualTime:
    def test_sequential_time_adds_up(self):
        # split + 4 executes + merge at 1s each on one core = 6s.
        plat = SimulatedPlatform(parallelism=1, cost_model=ConstantCostModel(1.0))
        run(wide_map(4), 0, plat)
        assert plat.now() == pytest.approx(6.0)

    def test_parallel_time_shrinks(self):
        plat = SimulatedPlatform(parallelism=4, cost_model=ConstantCostModel(1.0))
        run(wide_map(4), 0, plat)
        # split 1s + executes in parallel 1s + merge 1s.
        assert plat.now() == pytest.approx(3.0)

    def test_more_cores_than_work_changes_nothing(self):
        p4 = SimulatedPlatform(parallelism=4, cost_model=ConstantCostModel(1.0))
        p9 = SimulatedPlatform(parallelism=9, cost_model=ConstantCostModel(1.0))
        run(wide_map(4), 0, p4)
        run(wide_map(4), 0, p9)
        assert p4.now() == p9.now()

    def test_zero_cost_default(self):
        plat = SimulatedPlatform(parallelism=2)
        run(wide_map(4), 0, plat)
        assert plat.now() == 0.0

    def test_per_muscle_costs(self):
        skel = wide_map(2)
        costs = TableCostModel({"w": 2.0, "dbl": 3.0, "sum": 1.0})
        plat = SimulatedPlatform(parallelism=1, cost_model=costs)
        run(skel, 0, plat)
        assert plat.now() == pytest.approx(2 + 3 + 3 + 1)


class TestCorrectness:
    def test_result_matches_reference(self):
        skel = wide_map(5)
        plat = SimulatedPlatform(parallelism=3, cost_model=ConstantCostModel(0.5))
        assert run(skel, 10, plat) == sequential_evaluate(wide_map(5), 10)

    def test_multiple_executions_same_platform(self):
        plat = SimulatedPlatform(parallelism=2)
        skel = wide_map(3)
        assert run(skel, 1, plat) == run(skel, 1, plat)

    def test_muscle_error_propagates(self):
        skel = Seq(lambda v: 1 / 0)
        plat = SimulatedPlatform()
        with pytest.raises(MuscleExecutionError) as exc_info:
            run(skel, 0, plat)
        assert isinstance(exc_info.value.cause, ZeroDivisionError)

    def test_execution_continues_after_error(self):
        plat = SimulatedPlatform()
        with pytest.raises(MuscleExecutionError):
            run(Seq(lambda v: 1 / 0), 0, plat)
        assert run(Seq(lambda v: v + 1), 1, plat) == 2


class TestDeterminism:
    def test_identical_event_logs(self):
        def execute_once():
            plat = SimulatedPlatform(parallelism=2, cost_model=ConstantCostModel(1.0))
            rec = EventRecorder()
            plat.add_listener(rec)
            run(wide_map(6), 3, plat)
            return [(e.label, e.index, round(e.timestamp, 9), e.worker)
                    for e in rec.events]

        assert execute_once() == execute_once()

    def test_task_log_deterministic(self):
        def execute_once():
            plat = SimulatedPlatform(
                parallelism=3, cost_model=ConstantCostModel(1.0), trace_tasks=True
            )
            run(wide_map(6), 3, plat)
            return plat.task_log

        assert execute_once() == execute_once()


class TestParallelismControl:
    def test_set_parallelism_clamps(self):
        plat = SimulatedPlatform(parallelism=2, max_parallelism=4)
        assert plat.set_parallelism(100) == 4
        assert plat.set_parallelism(0) == 1

    def test_grow_mid_run_takes_effect(self):
        # Raise LP right after the split: the 4 executes then run in
        # parallel instead of serially.
        skel = wide_map(4)
        plat = SimulatedPlatform(parallelism=1, cost_model=ConstantCostModel(1.0))
        plat.bus.add_callback(
            lambda e: (plat.set_parallelism(4), e.value)[1],
            kind="map",
        )
        run(skel, 0, plat)
        assert plat.now() == pytest.approx(3.0)

    def test_metrics_track_active(self):
        plat = SimulatedPlatform(parallelism=4, cost_model=ConstantCostModel(1.0))
        run(wide_map(4), 0, plat)
        assert plat.metrics.peak_active() == 4

    def test_scheduling_policy_validation(self):
        with pytest.raises(PlatformError):
            SimulatedPlatform(scheduling="random")


class TestDepthFirst:
    def test_depth_first_finishes_first_branch_before_second(self):
        # Nested maps on one core: the first inner map must fully finish
        # (including its merge) before the second inner split starts.
        fs = Split(lambda v: [v, v + 1], name="fs")
        inner = Map(Split(lambda v: [v, v], name="fs2"), Seq(lambda v: v), sum)
        outer = Map(fs, inner, Merge(sum, name="fm"))
        plat = SimulatedPlatform(parallelism=1, cost_model=ConstantCostModel(1.0))
        rec = EventRecorder()
        plat.add_listener(rec)
        run(outer, 0, plat)
        labels = [(e.label, e.index) for e in rec.events]
        first_merge = labels.index(("map@am", 1))
        second_split = labels.index(("map@bs", 2))
        assert first_merge < second_split

    def test_fifo_policy_runs_siblings_first(self):
        fs = Split(lambda v: [v, v + 1], name="fs")
        inner = Map(Split(lambda v: [v, v], name="fs2"), Seq(lambda v: v), sum)
        outer = Map(fs, inner, Merge(sum, name="fm"))
        plat = SimulatedPlatform(
            parallelism=1, cost_model=ConstantCostModel(1.0), scheduling="fifo"
        )
        rec = EventRecorder()
        plat.add_listener(rec)
        run(outer, 0, plat)
        labels = [(e.label, e.index) for e in rec.events]
        first_merge = labels.index(("map@am", 1))
        second_split = labels.index(("map@bs", 2))
        assert second_split < first_merge


class TestShutdown:
    def test_submit_after_shutdown_raises(self):
        plat = SimulatedPlatform()
        plat.shutdown()
        with pytest.raises(PlatformError):
            run(Seq(lambda v: v), 0, plat)
