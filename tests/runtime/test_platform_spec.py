"""Tests for PlatformSpec validation and the make_platform deprecation shim."""

import pytest

from repro import (
    PlatformError,
    PlatformSpec,
    ProcessSpec,
    RemoteSpec,
    SimulatedSpec,
    ThreadPoolPlatform,
    make_platform,
)


class TestSpecValidation:
    def test_defaults(self):
        spec = PlatformSpec(kind="threads")
        assert spec.workers == 1
        assert spec.max_workers is None
        assert spec.rtt == 0.0
        assert spec.batching is None

    def test_workers_must_be_positive(self):
        with pytest.raises(PlatformError, match="workers must be >= 1"):
            PlatformSpec(kind="threads", workers=0)

    def test_max_workers_must_cover_workers(self):
        with pytest.raises(PlatformError, match="below workers"):
            PlatformSpec(kind="threads", workers=4, max_workers=2)

    def test_rtt_non_negative(self):
        with pytest.raises(PlatformError, match="rtt"):
            PlatformSpec(kind="distributed", rtt=-0.1)

    def test_batching_positive(self):
        with pytest.raises(PlatformError, match="batching"):
            PlatformSpec(kind="processes", batching=0)

    def test_kind_required(self):
        with pytest.raises(PlatformError, match="kind"):
            PlatformSpec(kind="")

    def test_subspec_types_enforced(self):
        with pytest.raises(PlatformError, match="RemoteSpec"):
            PlatformSpec(kind="distributed", remote={"heartbeat_interval": 1})

    def test_remote_spec_heartbeat_ordering(self):
        with pytest.raises(PlatformError, match="heartbeat_timeout"):
            RemoteSpec(heartbeat_interval=1.0, heartbeat_timeout=0.5)

    def test_process_spec_start_method(self):
        with pytest.raises(PlatformError, match="start method"):
            ProcessSpec(start_method="teleport")

    def test_simulated_spec_speeds_positive(self):
        with pytest.raises(PlatformError, match="positive"):
            SimulatedSpec(worker_speeds=(1.0, 0.0))

    def test_with_overrides_revalidates(self):
        spec = PlatformSpec(kind="threads", workers=2)
        assert spec.with_overrides(workers=5).workers == 5
        with pytest.raises(PlatformError):
            spec.with_overrides(workers=0)

    def test_describe_mentions_non_defaults_only(self):
        text = PlatformSpec(kind="distributed", workers=4, rtt=0.05).describe()
        assert "kind='distributed'" in text
        assert "workers=4" in text and "rtt=0.05" in text
        assert "batching" not in text


class TestFromOptions:
    def test_legacy_names_map_to_spec_fields(self):
        spec = PlatformSpec.from_options(
            "processes", parallelism=3, max_parallelism=9, chunk_size=4
        )
        assert (spec.workers, spec.max_workers, spec.batching) == (3, 9, 4)

    def test_latencies_fold_into_rtt(self):
        spec = PlatformSpec.from_options(
            "simulated-distributed", dispatch_latency=0.02, collect_latency=0.03
        )
        assert spec.rtt == pytest.approx(0.05)

    def test_rtt_and_latencies_conflict(self):
        with pytest.raises(TypeError, match="not both"):
            PlatformSpec.from_options("distributed", rtt=0.1, dispatch_latency=0.05)

    def test_backend_knobs_route_to_subspecs(self):
        spec = PlatformSpec.from_options(
            "distributed",
            heartbeat_interval=0.1,
            heartbeat_timeout=0.5,
            start_method="spawn",
        )
        assert spec.remote.heartbeat_interval == 0.1
        assert spec.remote.heartbeat_timeout == 0.5
        assert spec.processes.start_method == "spawn"

    def test_simulated_knobs_route_to_subspec(self):
        spec = PlatformSpec.from_options(
            "simulated", trace_tasks=True, scheduling="fifo"
        )
        assert spec.simulated.trace_tasks is True
        assert spec.simulated.scheduling == "fifo"

    def test_unknown_option_is_a_type_error(self):
        with pytest.raises(TypeError, match="unknown platform option"):
            PlatformSpec.from_options("threads", bogus=1)


class TestDeprecationShim:
    def test_legacy_kwargs_call_warns_and_works(self):
        # The exact historical call shape must keep working.
        with pytest.deprecated_call(match="make_platform"):
            platform = make_platform("threads", parallelism=4)
        try:
            assert isinstance(platform, ThreadPoolPlatform)
            assert platform.get_parallelism() == 4
        finally:
            platform.shutdown()

    def test_spec_field_names_also_work_through_the_shim(self):
        with pytest.deprecated_call(match="make_platform"):
            platform = make_platform("threads", workers=4)
        try:
            assert platform.get_parallelism() == 4
        finally:
            platform.shutdown()

    def test_legacy_alias_with_kwargs_warns(self):
        with pytest.deprecated_call():
            platform = make_platform("threadpool", parallelism=2, max_parallelism=6)
        try:
            assert platform.max_parallelism == 6
        finally:
            platform.shutdown()

    def test_typed_call_does_not_warn(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            platform = make_platform(PlatformSpec(kind="threads", workers=2))
        platform.shutdown()

    def test_service_builds_spec_path_without_warning(self):
        import warnings

        from repro import SkeletonService

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            service = SkeletonService(backend="threads", capacity=2)
        service.shutdown()

    def test_service_accepts_platform_spec(self):
        from repro import SkeletonService

        service = SkeletonService(
            backend=PlatformSpec(kind="threads"), capacity=3
        )
        try:
            assert service.capacity == 3
            assert service.platform.max_parallelism == 3
        finally:
            service.shutdown()
