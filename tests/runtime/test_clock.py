"""Unit tests for the clock abstraction."""

import time

import pytest

from repro.runtime.clock import RealClock, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now() == 0.0

    def test_custom_start(self):
        assert VirtualClock(5.0).now() == 5.0

    def test_advance_to(self):
        c = VirtualClock()
        c.advance_to(3.5)
        assert c.now() == 3.5

    def test_advance_by(self):
        c = VirtualClock(1.0)
        c.advance_by(2.0)
        assert c.now() == 3.0

    def test_rejects_backwards_advance_to(self):
        c = VirtualClock(10.0)
        with pytest.raises(ValueError):
            c.advance_to(5.0)

    def test_rejects_negative_advance_by(self):
        with pytest.raises(ValueError):
            VirtualClock().advance_by(-1.0)

    def test_tolerates_equal_time(self):
        c = VirtualClock(2.0)
        c.advance_to(2.0)
        assert c.now() == 2.0


class TestRealClock:
    def test_rebased_near_zero(self):
        assert RealClock().now() < 0.5

    def test_monotonic(self):
        c = RealClock()
        a = c.now()
        time.sleep(0.01)
        assert c.now() > a
