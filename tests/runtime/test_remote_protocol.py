"""Tests for the wire protocol and boundary-safe error helpers."""

import pickle

import pytest

from repro.errors import (
    MuscleExecutionError,
    PlatformError,
    RemoteProtocolError,
    WorkerLostError,
    error_from_jsonable,
    jsonable_error,
    pickle_safe_exception,
)
from repro.runtime.remote import protocol
from repro.runtime.remote.protocol import FrameBuffer, decode_json, encode_json


class _Unpicklable(Exception):
    """A user exception whose payload cannot cross a process boundary."""

    def __init__(self, message):
        super().__init__(message)
        self.payload = lambda: None  # closures do not pickle


class TestFrameBuffer:
    def test_yields_complete_frames_across_partial_feeds(self):
        wire = b"".join(
            protocol._HEADER.pack(len(p)) + p for p in (b"alpha", b"", b"omega")
        )
        buf = FrameBuffer()
        frames = []
        for i in range(0, len(wire), 3):  # drip-feed in 3-byte slices
            buf.feed(wire[i : i + 3])
            frames.extend(buf.frames())
        assert frames == [b"alpha", b"", b"omega"]

    def test_incomplete_frame_stays_buffered(self):
        buf = FrameBuffer()
        buf.feed(protocol._HEADER.pack(10) + b"part")
        assert list(buf.frames()) == []
        buf.feed(b"ialXXX")
        assert list(buf.frames()) == [b"partialXXX"]

    def test_oversized_frame_rejected(self):
        buf = FrameBuffer()
        buf.feed(protocol._HEADER.pack(protocol.MAX_FRAME + 1))
        with pytest.raises(RemoteProtocolError, match="oversized"):
            list(buf.frames())

    def test_json_round_trip(self):
        frame = encode_json({"type": "ENROLL", "pid": 42})
        assert decode_json(frame) == {"type": "ENROLL", "pid": 42}

    def test_malformed_json_raises_protocol_error(self):
        with pytest.raises(RemoteProtocolError, match="malformed"):
            decode_json(b"\x80\x04not json")

    def test_typeless_message_rejected(self):
        with pytest.raises(RemoteProtocolError, match="without a type"):
            decode_json(b'{"pid": 1}')


class TestEncodeResults:
    def _round_trip(self, results):
        kind, items = pickle.loads(protocol.encode_results(results))
        assert kind == "results"
        return items

    def test_plain_results_pass_through(self):
        items = self._round_trip([(0, True, 41, 1.0, 2.0)])
        assert items == [(0, True, 41, 1.0, 2.0)]

    def test_unpicklable_result_replaced_per_item(self):
        items = self._round_trip(
            [(0, True, 1, 0.0, 0.1), (1, True, lambda: None, 0.0, 0.1)]
        )
        # The healthy result survives; only the poisoned one is replaced.
        assert items[0] == (0, True, 1, 0.0, 0.1)
        index, ok, value, _, _ = items[1]
        assert (index, ok) == (1, False)
        assert isinstance(value, PlatformError)
        assert "not picklable" in str(value)

    def test_unpicklable_exception_keeps_muscle_error_structure(self):
        exc = MuscleExecutionError("mymuscle", _Unpicklable("boom"), trace=("a", "b"))
        (item,) = self._round_trip([(0, False, exc, 0.0, 0.1)])
        _, ok, value, _, _ = item
        assert ok is False
        assert isinstance(value, MuscleExecutionError)
        assert value.muscle_name == "mymuscle"
        assert value.trace == ("a", "b")
        assert isinstance(value.cause, PlatformError)
        assert "_Unpicklable" in str(value.cause)


class TestPickleSafeException:
    def test_picklable_exception_returned_unchanged(self):
        exc = ValueError("fine")
        assert pickle_safe_exception(exc) is exc

    def test_unpicklable_exception_replaced(self):
        safe = pickle_safe_exception(_Unpicklable("nope"))
        assert isinstance(safe, PlatformError)
        pickle.loads(pickle.dumps(safe))  # the stand-in must round-trip

    def test_broken_str_survives(self):
        class _BrokenStr(Exception):
            def __init__(self):
                self.f = lambda: None

            def __str__(self):
                raise RuntimeError("no str for you")

        safe = pickle_safe_exception(_BrokenStr())
        assert isinstance(safe, PlatformError)
        pickle.loads(pickle.dumps(safe))


class TestJsonableErrors:
    def test_known_type_round_trips(self):
        payload = jsonable_error(WorkerLostError("worker 3 vanished"))
        clone = error_from_jsonable(payload)
        assert isinstance(clone, WorkerLostError)
        assert "worker 3 vanished" in str(clone)

    def test_unknown_type_degrades_to_protocol_error(self):
        clone = error_from_jsonable({"type": "CustomUserError", "message": "hm"})
        assert isinstance(clone, RemoteProtocolError)
        assert "CustomUserError" in str(clone)

    def test_malformed_payload_degrades(self):
        assert isinstance(error_from_jsonable(None), RemoteProtocolError)
        assert isinstance(error_from_jsonable("boom"), RemoteProtocolError)

    def test_payload_is_json_serializable(self):
        import json

        json.dumps(jsonable_error(_Unpicklable("x")))
