"""Unit tests for the LP-trajectory metrics."""

import pytest

from repro.runtime.metrics import LPSeries


def series(points):
    s = LPSeries()
    for t, active, alloc in points:
        s.record(t, active, alloc)
    return s


class TestBasics:
    def test_empty(self):
        s = LPSeries()
        assert s.peak_active() == 0
        assert s.end_time() == 0.0
        assert len(s) == 0

    def test_peaks(self):
        s = series([(0, 0, 1), (1, 2, 4), (2, 3, 4), (3, 1, 2)])
        assert s.peak_active() == 3
        assert s.peak_allocated() == 4

    def test_active_at(self):
        s = series([(0, 0, 1), (1, 2, 2), (3, 1, 2)])
        assert s.active_at(0.5) == 0
        assert s.active_at(1.0) == 2
        assert s.active_at(2.9) == 2
        assert s.active_at(10) == 1

    def test_first_time_above(self):
        s = series([(0, 1, 1), (2.5, 3, 4), (4, 5, 8)])
        assert s.first_time_active_above(1) == 2.5
        assert s.first_time_active_above(4) == 4
        assert s.first_time_active_above(10) is None

    def test_as_steps(self):
        s = series([(0, 1, 1), (1, 2, 2)])
        assert s.as_steps() == [(0, 1), (1, 2)]


class TestIntegral:
    def test_rectangle(self):
        s = series([(0, 2, 2), (5, 0, 2)])
        assert s.active_integral() == pytest.approx(10.0)

    def test_steps(self):
        s = series([(0, 1, 1), (1, 3, 3), (2, 0, 3)])
        assert s.active_integral() == pytest.approx(1 * 1 + 3 * 1)


class TestPlateau:
    def test_downsample(self):
        s = series([(0.0, 1, 1), (0.1, 5, 5), (1.2, 2, 5)])
        buckets = s.merge_plateau(1.0)
        assert buckets == [(0.0, 5), (1.0, 2)]

    def test_rejects_bad_resolution(self):
        with pytest.raises(ValueError):
            LPSeries().merge_plateau(0)
