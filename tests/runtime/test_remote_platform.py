"""Tests for DistributedPlatform: real workers over localhost sockets."""

import threading
import time
from functools import partial

import pytest

from repro import (
    EventRecorder,
    Execute,
    Map,
    Merge,
    MuscleExecutionError,
    PlatformError,
    PlatformSpec,
    RemoteSpec,
    Seq,
    Split,
    make_platform,
    request_resize,
    run,
    start_worker,
)
from repro.runtime.remote.worker import worker_main
from repro.skeletons import sequential_evaluate
from tests.conftest import px_iota, px_leaf, px_sleep_echo, px_sum_mod


class _EvilError(Exception):
    """A user exception that refuses to pickle (closure payload)."""

    def __init__(self, message):
        super().__init__(message)
        self.payload = lambda: None


def px_raise_evil(v):
    raise _EvilError(f"evil({v})")


def _map_program(width, k=3):
    return Map(
        Split(partial(px_iota, width=width), name="dsplit"),
        Seq(Execute(partial(px_leaf, k=k), name="dleaf")),
        Merge(px_sum_mod, name="dsum"),
    )


def _spec(**kw):
    remote = kw.pop("remote", RemoteSpec(heartbeat_interval=0.1, heartbeat_timeout=0.6))
    return PlatformSpec(kind="distributed", remote=remote, **kw)


class TestDistributedExecution:
    def test_map_matches_reference(self):
        expected = sequential_evaluate(_map_program(10), 5)
        with make_platform(_spec(workers=3, batching=4)) as platform:
            assert run(_map_program(10), 5, platform) == expected

    def test_events_balanced_and_carry_started_at(self):
        with make_platform(_spec(workers=2, batching=2)) as platform:
            recorder = EventRecorder()
            platform.add_listener(recorder)
            run(_map_program(6), 3, platform)
            assert recorder.is_balanced()
            afters = [e for e in recorder.events if e.label == "seq@a"]
            assert afters, "leaf AFTER events must be re-emitted in-process"
            for event in afters:
                assert isinstance(event.worker, int)
                assert "started_at" in event.extra
                assert event.extra["started_at"] <= event.timestamp

    def test_worker_stats_cover_all_tasks(self):
        with make_platform(_spec(workers=2)) as platform:
            run(_map_program(8), 1, platform)
            stats = platform.worker_stats()
            # 8 leaf tasks plus the split and merge muscles = 10 executions.
            assert sum(done for done, _ in stats.values()) == 10

    def test_unpicklable_user_exception_crosses_the_socket(self):
        """Regression: a hostile exception must not kill worker or master."""
        program = Seq(Execute(px_raise_evil, name="evil"))
        with make_platform(_spec(workers=1)) as platform:
            with pytest.raises(MuscleExecutionError) as excinfo:
                run(program, 7, platform)
            assert excinfo.value.muscle_name == "evil"
            assert isinstance(excinfo.value.cause, PlatformError)
            assert "_EvilError" in str(excinfo.value.cause)
            # The platform survives the hostile exception and keeps working.
            assert run(_map_program(4), 2, platform) == sequential_evaluate(
                _map_program(4), 2
            )

    def test_learned_worker_speeds_show_in_spans(self):
        """Heterogeneity is injected worker-side only; spans reveal it."""
        spec = _spec(
            workers=2,
            batching=1,
            remote=RemoteSpec(
                heartbeat_interval=0.1,
                heartbeat_timeout=0.6,
                worker_delays=(0.0, 0.12),
            ),
        )
        program = Map(
            Split(partial(px_iota, width=10), name="hsplit"),
            Seq(Execute(partial(px_sleep_echo, duration=0.02), name="hleaf")),
            Merge(px_sum_mod, name="hsum"),
        )
        with make_platform(spec) as platform:
            recorder = EventRecorder()
            platform.add_listener(recorder)
            run(program, 1, platform)
            spans = {}
            for event in recorder.events:
                if event.label == "seq@a":
                    spans.setdefault(event.worker, []).append(
                        event.timestamp - event.extra["started_at"]
                    )
            assert len(spans) == 2, "both workers must have run leaf tasks"
            means = sorted(sum(v) / len(v) for v in spans.values())
            # The slow worker's observed spans include its injected delay:
            # that is the signal the estimators learn speeds from.
            assert means[1] > means[0] + 0.06


class TestControlPlane:
    def test_resize_over_socket(self):
        with make_platform(_spec(workers=1, max_workers=4)) as platform:
            applied = request_resize(platform.address, 3)
            assert applied == 3
            assert platform.get_parallelism() == 3

    def test_resize_clamps_to_max(self):
        with make_platform(_spec(workers=1, max_workers=2)) as platform:
            assert request_resize(platform.address, 99) == 2

    def test_enrollment_only_mode_accepts_external_workers(self):
        spec = _spec(
            workers=2,
            remote=RemoteSpec(
                heartbeat_interval=0.1, heartbeat_timeout=0.6, spawn_workers=False
            ),
        )
        with make_platform(spec) as platform:
            processes = [start_worker(platform.address) for _ in range(2)]
            try:
                deadline = time.monotonic() + 10
                while platform.live_workers < 2:
                    assert time.monotonic() < deadline, "workers never enrolled"
                    time.sleep(0.01)
                expected = sequential_evaluate(_map_program(8), 5)
                assert run(_map_program(8), 5, platform) == expected
            finally:
                for process in processes:
                    if process.is_alive():
                        process.terminate()
                    process.join(timeout=5)

    def test_enrollment_rejected_at_capacity(self):
        """A cap rejection crosses the control plane as a typed error."""
        spec = _spec(
            workers=1,
            max_workers=1,
            remote=RemoteSpec(
                heartbeat_interval=0.1, heartbeat_timeout=0.6, spawn_workers=False
            ),
        )
        with make_platform(spec) as platform:
            process = start_worker(platform.address)
            try:
                deadline = time.monotonic() + 10
                while platform.live_workers < 1:
                    assert time.monotonic() < deadline
                    time.sleep(0.01)
                # The pool is at its cap: enrolling in-process must raise
                # the decoded JSON-safe error from ENROLL_ERR.
                with pytest.raises(PlatformError, match="cap"):
                    worker_main(*platform.address)
            finally:
                if process.is_alive():
                    process.terminate()
                process.join(timeout=5)

    def test_shutdown_is_idempotent_and_unblocks(self):
        platform = make_platform(_spec(workers=2))
        platform.shutdown()
        platform.shutdown()
        with pytest.raises(PlatformError):
            run(_map_program(2), 1, platform)

    def test_grow_and_shrink_live(self):
        with make_platform(_spec(workers=1, max_workers=4)) as platform:
            platform.set_parallelism(3)
            deadline = time.monotonic() + 10
            while platform.live_workers < 3:
                assert time.monotonic() < deadline, "pool never grew"
                time.sleep(0.01)
            platform.set_parallelism(1)
            while platform.live_workers > 1:
                assert time.monotonic() < deadline, "pool never shrank"
                time.sleep(0.01)
            assert run(_map_program(4), 2, platform) == sequential_evaluate(
                _map_program(4), 2
            )

    def test_concurrent_submissions_from_threads(self):
        with make_platform(_spec(workers=3, batching=2)) as platform:
            expected = sequential_evaluate(_map_program(6), 4)
            results = []

            def drive():
                results.append(run(_map_program(6), 4, platform))

            threads = [threading.Thread(target=drive) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert results == [expected] * 4
