"""Per-execution worker shares on the shared platforms.

The base :class:`Platform` stores the share mapping; the pool platforms
and the simulator enforce it when matching queued tasks to workers: an
execution never occupies more workers than its share, and skipped tasks
keep their queue position until a slot frees.
"""

import threading
import time

import pytest

from repro import (
    Execute,
    Map,
    Merge,
    PlatformError,
    Seq,
    SimulatedPlatform,
    Split,
    ThreadPoolPlatform,
)
from repro.events import Listener, When
from repro.runtime.clock import VirtualClock
from repro.runtime.costmodel import ConstantCostModel
from repro.runtime.interpreter import submit
from repro.runtime.platform import Platform
from repro.runtime.task import Execution


class TestShareStore:
    def make(self):
        return Platform(parallelism=2, max_parallelism=8, clock=VirtualClock())

    def test_default_unlimited(self):
        platform = self.make()
        assert platform.share_of(123) is None
        assert platform.get_shares() == {}

    def test_set_and_replace_wholesale(self):
        platform = self.make()
        platform.set_shares({1: 2, 2: 3})
        assert platform.share_of(1) == 2
        platform.set_shares({2: 4})
        assert platform.share_of(1) is None  # stale entry vanished
        assert platform.share_of(2) == 4

    def test_rejects_non_positive_share(self):
        platform = self.make()
        with pytest.raises(PlatformError):
            platform.set_shares({1: 0})


class PeakConcurrency(Listener):
    """Max simultaneous muscle bodies per execution (leaf Seq events)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._running = {}
        self.peak = {}

    def accepts(self, event):
        return event.kind == "seq"

    def on_event(self, event):
        with self._lock:
            eid = event.execution_id
            if event.when is When.BEFORE:
                self._running[eid] = self._running.get(eid, 0) + 1
                self.peak[eid] = max(self.peak.get(eid, 0), self._running[eid])
            else:
                self._running[eid] = self._running.get(eid, 0) - 1
        return event.value


def wide_map(width, body):
    return Map(
        Split(lambda v, w=width: [v] * w, name="fs"),
        Seq(Execute(body, name="fe")),
        Merge(sum, name="fm"),
    )


class TestThreadPoolShares:
    def test_execution_never_exceeds_its_share(self):
        with ThreadPoolPlatform(parallelism=6, max_parallelism=6) as platform:
            peaks = PeakConcurrency()
            platform.add_listener(peaks)
            exec_a = Execution(platform.new_future())
            exec_b = Execution(platform.new_future())
            platform.set_shares({exec_a.id: 1, exec_b.id: 3})
            program = wide_map(8, lambda v: (time.sleep(0.02), v)[1])
            fa = submit(program, 1, platform, execution=exec_a)
            fb = submit(wide_map(8, lambda v: (time.sleep(0.02), v)[1]), 2, platform,
                        execution=exec_b)
            assert fa.get(timeout=10.0) == 8
            assert fb.get(timeout=10.0) == 16
            assert peaks.peak[exec_a.id] <= 1
            assert peaks.peak[exec_b.id] <= 3
            # The capped execution still finished: skipped tasks were kept.
            assert platform.queued_tasks == 0

    def test_share_raise_unblocks_capped_work(self):
        with ThreadPoolPlatform(parallelism=4, max_parallelism=4) as platform:
            peaks = PeakConcurrency()
            platform.add_listener(peaks)
            execution = Execution(platform.new_future())
            platform.set_shares({execution.id: 1})
            future = submit(
                wide_map(12, lambda v: (time.sleep(0.02), v)[1]),
                1,
                platform,
                execution=execution,
            )
            time.sleep(0.05)
            platform.set_shares({execution.id: 4})
            assert future.get(timeout=10.0) == 12
            assert peaks.peak[execution.id] > 1  # the raise took effect

    def test_unshared_executions_unaffected(self):
        with ThreadPoolPlatform(parallelism=4, max_parallelism=4) as platform:
            peaks = PeakConcurrency()
            platform.add_listener(peaks)
            other = Execution(platform.new_future())
            platform.set_shares({other.id + 1000: 1})  # share for someone else
            future = submit(
                wide_map(8, lambda v: (time.sleep(0.02), v)[1]),
                1,
                platform,
                execution=other,
            )
            assert future.get(timeout=10.0) == 8
            assert peaks.peak[other.id] > 1


class TestSimulatorShares:
    def run_two(self, share_a, share_b, width=4, parallelism=4):
        platform = SimulatedPlatform(
            parallelism=parallelism,
            cost_model=ConstantCostModel(1.0),
            max_parallelism=8,
        )
        peaks = PeakConcurrency()
        platform.add_listener(peaks)
        exec_a = Execution(platform.new_future())
        exec_b = Execution(platform.new_future())
        platform.set_shares({exec_a.id: share_a, exec_b.id: share_b})
        fa = submit(wide_map(width, lambda v: v), 1, platform, execution=exec_a)
        fb = submit(wide_map(width, lambda v: v), 2, platform, execution=exec_b)
        assert fa.get() == width
        assert fb.get() == 2 * width
        return peaks, exec_a, exec_b, platform

    def test_shares_cap_virtual_concurrency(self):
        peaks, exec_a, exec_b, _ = self.run_two(share_a=1, share_b=3)
        assert peaks.peak[exec_a.id] <= 1
        assert peaks.peak[exec_b.id] <= 3

    def test_sharing_is_deterministic(self):
        first = self.run_two(share_a=2, share_b=2)[3].now()
        second = self.run_two(share_a=2, share_b=2)[3].now()
        assert first == second

    def test_equal_shares_split_the_cores(self):
        peaks, exec_a, exec_b, _ = self.run_two(share_a=2, share_b=2, width=6)
        assert peaks.peak[exec_a.id] <= 2
        assert peaks.peak[exec_b.id] <= 2
