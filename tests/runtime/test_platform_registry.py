"""Tests for the platform registry and make_platform."""

import pytest

from repro import (
    PlatformError,
    PlatformRegistry,
    ProcessPoolPlatform,
    SimulatedPlatform,
    ThreadPoolPlatform,
    available_backends,
    make_platform,
)


class TestDefaultRegistry:
    def test_all_builtin_backends_registered(self):
        assert {"simulated", "threads", "processes"} <= set(available_backends())

    @pytest.mark.parametrize(
        "name, cls",
        [
            ("simulated", SimulatedPlatform),
            ("threads", ThreadPoolPlatform),
            ("processes", ProcessPoolPlatform),
        ],
    )
    def test_make_platform_constructs_the_right_class(self, name, cls):
        platform = make_platform(name, parallelism=1)
        try:
            assert isinstance(platform, cls)
            assert platform.get_parallelism() == 1
        finally:
            platform.shutdown()

    @pytest.mark.parametrize(
        "alias, canonical_cls",
        [
            ("sim", SimulatedPlatform),
            ("threadpool", ThreadPoolPlatform),
            ("Thread", ThreadPoolPlatform),
            ("PROCESSPOOL", ProcessPoolPlatform),
            ("procs", ProcessPoolPlatform),
        ],
    )
    def test_aliases_and_case_insensitivity(self, alias, canonical_cls):
        platform = make_platform(alias, parallelism=1)
        try:
            assert isinstance(platform, canonical_cls)
        finally:
            platform.shutdown()

    def test_kwargs_forwarded_to_constructor(self):
        with make_platform("threads", parallelism=2, max_parallelism=5) as platform:
            assert platform.get_parallelism() == 2
            assert platform.max_parallelism == 5

    def test_unknown_backend_lists_available_names(self):
        with pytest.raises(PlatformError, match="processes.*simulated.*threads"):
            make_platform("gpu")


class TestErrorPaths:
    def test_unknown_backend_raises_platform_error(self):
        with pytest.raises(PlatformError, match="unknown execution backend"):
            make_platform("quantum")

    def test_unknown_backend_on_custom_registry(self):
        registry = PlatformRegistry()
        registry.register("only", SimulatedPlatform)
        with pytest.raises(PlatformError, match="only"):
            registry.create("other")

    def test_bad_kwargs_surface_from_the_constructor(self):
        # The registry forwards kwargs verbatim; a typo'd knob must not
        # be swallowed.
        with pytest.raises(TypeError):
            make_platform("simulated", bogus_knob=3)

    def test_invalid_platform_arguments_still_validate(self):
        with pytest.raises(PlatformError):
            make_platform("simulated", parallelism=0)
        with pytest.raises(PlatformError):
            make_platform("threads", parallelism=4, max_parallelism=1)

    def test_name_colliding_with_existing_alias_rejected(self):
        registry = PlatformRegistry()
        registry.register("a", SimulatedPlatform, aliases=("b",))
        with pytest.raises(PlatformError, match="already registered"):
            registry.register("b", ThreadPoolPlatform)

    def test_alias_colliding_with_existing_name_rejected(self):
        registry = PlatformRegistry()
        registry.register("a", SimulatedPlatform)
        with pytest.raises(PlatformError, match="already registered"):
            registry.register("c", ThreadPoolPlatform, aliases=("a",))


class TestAvailableBackendsOrdering:
    def test_sorted_canonical_names_only(self):
        names = available_backends()
        assert names == sorted(names)
        # Canonical names only — aliases are resolvable but not listed.
        assert "sim" not in names and "procs" not in names
        assert "simulated" in names and "processes" in names

    def test_custom_registry_names_sorted(self):
        registry = PlatformRegistry()
        registry.register("zeta", SimulatedPlatform)
        registry.register("alpha", SimulatedPlatform)
        registry.register("mid", SimulatedPlatform)
        assert registry.names() == ["alpha", "mid", "zeta"]


class TestCustomRegistry:
    def test_register_and_create(self):
        registry = PlatformRegistry()
        registry.register("sim", SimulatedPlatform, description="virtual")
        platform = registry.create("sim", parallelism=3)
        assert isinstance(platform, SimulatedPlatform)
        assert platform.get_parallelism() == 3
        assert registry.describe() == {"sim": "virtual"}
        assert "sim" in registry and "nope" not in registry

    def test_duplicate_names_rejected(self):
        registry = PlatformRegistry()
        registry.register("a", SimulatedPlatform, aliases=("b",))
        with pytest.raises(PlatformError):
            registry.register("a", ThreadPoolPlatform)
        with pytest.raises(PlatformError):
            registry.register("c", ThreadPoolPlatform, aliases=("b",))
