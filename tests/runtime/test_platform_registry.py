"""Tests for the platform registry and make_platform (spec-based API)."""

import pytest

from repro import (
    PlatformError,
    PlatformRegistry,
    PlatformSpec,
    ProcessPoolPlatform,
    SimulatedDistributedPlatform,
    SimulatedPlatform,
    ThreadPoolPlatform,
    available_backends,
    make_platform,
)
from repro.runtime.registry import DEFAULT_REGISTRY


def _sim_factory(spec):
    return SimulatedPlatform(
        parallelism=spec.workers, max_parallelism=spec.max_workers
    )


class TestDefaultRegistry:
    def test_all_builtin_backends_registered(self):
        assert {
            "simulated",
            "threads",
            "processes",
            "simulated-distributed",
            "distributed",
        } <= set(available_backends())

    @pytest.mark.parametrize(
        "kind, cls",
        [
            ("simulated", SimulatedPlatform),
            ("threads", ThreadPoolPlatform),
            ("processes", ProcessPoolPlatform),
            ("simulated-distributed", SimulatedDistributedPlatform),
        ],
    )
    def test_build_constructs_the_right_class(self, kind, cls):
        platform = make_platform(PlatformSpec(kind=kind))
        try:
            assert isinstance(platform, cls)
            assert platform.get_parallelism() == 1
        finally:
            platform.shutdown()

    @pytest.mark.parametrize(
        "alias, canonical",
        [
            ("sim", "simulated"),
            ("threadpool", "threads"),
            ("Thread", "threads"),
            ("PROCESSPOOL", "processes"),
            ("procs", "processes"),
            ("simdist", "simulated-distributed"),
            ("remote", "distributed"),
            ("sockets", "distributed"),
        ],
    )
    def test_aliases_and_case_insensitivity(self, alias, canonical):
        assert DEFAULT_REGISTRY.resolve(alias) == canonical

    def test_spec_fields_reach_the_constructor(self):
        spec = PlatformSpec(kind="threads", workers=2, max_workers=5)
        with make_platform(spec) as platform:
            assert platform.get_parallelism() == 2
            assert platform.max_parallelism == 5

    def test_bare_name_is_an_all_defaults_spec_without_warning(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            platform = make_platform("threads")
        try:
            assert isinstance(platform, ThreadPoolPlatform)
        finally:
            platform.shutdown()

    def test_unknown_backend_lists_available_names(self):
        with pytest.raises(PlatformError, match="processes.*simulated.*threads"):
            make_platform("gpu")

    def test_spec_with_kwargs_rejected(self):
        with pytest.raises(TypeError, match="with_overrides"):
            make_platform(PlatformSpec(kind="threads"), parallelism=3)


class TestSpecFieldRejection:
    """Backends fail loudly on spec fields they cannot honour."""

    def test_threads_reject_rtt(self):
        with pytest.raises(PlatformError, match="does not accept spec field 'rtt'"):
            make_platform(PlatformSpec(kind="threads", rtt=0.1))

    def test_simulated_rejects_batching(self):
        with pytest.raises(PlatformError, match="'batching'"):
            make_platform(PlatformSpec(kind="simulated", batching=4))

    def test_processes_reject_remote_subspec(self):
        from repro import RemoteSpec

        with pytest.raises(PlatformError, match="'remote'"):
            make_platform(PlatformSpec(kind="processes", remote=RemoteSpec()))

    def test_builtin_backends_reject_extras(self):
        with pytest.raises(PlatformError, match="extra options"):
            make_platform(PlatformSpec(kind="threads", extra={"gpu": True}))

    def test_worker_speeds_only_on_simulated_distributed(self):
        from repro import SimulatedSpec

        with pytest.raises(PlatformError, match="worker_speeds"):
            make_platform(
                PlatformSpec(
                    kind="simulated",
                    simulated=SimulatedSpec(worker_speeds=(1.0, 2.0)),
                )
            )


class TestErrorPaths:
    def test_unknown_backend_raises_platform_error(self):
        with pytest.raises(PlatformError, match="unknown execution backend"):
            make_platform("quantum")

    def test_unknown_backend_on_custom_registry(self):
        registry = PlatformRegistry()
        registry.register("only", _sim_factory)
        with pytest.raises(PlatformError, match="only"):
            registry.create("other")

    def test_bad_kwargs_surface_as_type_error(self):
        # A typo'd knob must not be swallowed by the legacy conversion.
        with pytest.raises(TypeError):
            with pytest.deprecated_call():
                make_platform("simulated", bogus_knob=3)

    def test_invalid_platform_arguments_still_validate(self):
        with pytest.raises(PlatformError):
            make_platform(PlatformSpec(kind="simulated", workers=0))
        with pytest.raises(PlatformError):
            make_platform(PlatformSpec(kind="threads", workers=4, max_workers=1))

    def test_name_colliding_with_existing_alias_rejected(self):
        registry = PlatformRegistry()
        registry.register("a", _sim_factory, aliases=("b",))
        with pytest.raises(PlatformError, match="already registered"):
            registry.register("b", _sim_factory)

    def test_alias_colliding_with_existing_name_rejected(self):
        registry = PlatformRegistry()
        registry.register("a", _sim_factory)
        with pytest.raises(PlatformError, match="already registered"):
            registry.register("c", _sim_factory, aliases=("a",))


class TestAvailableBackendsOrdering:
    def test_sorted_canonical_names_only(self):
        names = available_backends()
        assert names == sorted(names)
        # Canonical names only — aliases are resolvable but not listed.
        assert "sim" not in names and "procs" not in names
        assert "simulated" in names and "processes" in names
        assert "distributed" in names and "simulated-distributed" in names

    def test_custom_registry_names_sorted(self):
        registry = PlatformRegistry()
        registry.register("zeta", _sim_factory)
        registry.register("alpha", _sim_factory)
        registry.register("mid", _sim_factory)
        assert registry.names() == ["alpha", "mid", "zeta"]


class TestCustomRegistry:
    def test_register_and_build(self):
        registry = PlatformRegistry()
        registry.register("sim", _sim_factory, description="virtual")
        platform = registry.build(PlatformSpec(kind="sim", workers=3))
        assert isinstance(platform, SimulatedPlatform)
        assert platform.get_parallelism() == 3
        assert registry.describe() == {"sim": "virtual"}
        assert "sim" in registry and "nope" not in registry

    def test_factory_sees_canonical_kind(self):
        seen = {}

        def factory(spec):
            seen["kind"] = spec.kind
            return _sim_factory(spec)

        registry = PlatformRegistry()
        registry.register("canon", factory, aliases=("nick",))
        registry.build(PlatformSpec(kind="NICK"))
        assert seen["kind"] == "canon"

    def test_third_party_factories_receive_extras(self):
        def factory(spec):
            assert spec.extra == {"device": 2}
            return _sim_factory(spec)

        registry = PlatformRegistry()
        registry.register("accel", factory)
        platform = registry.build(PlatformSpec(kind="accel", extra={"device": 2}))
        assert isinstance(platform, SimulatedPlatform)

    def test_legacy_create_converts_kwargs(self):
        registry = PlatformRegistry()
        registry.register("sim", _sim_factory)
        platform = registry.create("sim", parallelism=3)
        assert platform.get_parallelism() == 3

    def test_duplicate_names_rejected(self):
        registry = PlatformRegistry()
        registry.register("a", _sim_factory, aliases=("b",))
        with pytest.raises(PlatformError):
            registry.register("a", _sim_factory)
        with pytest.raises(PlatformError):
            registry.register("c", _sim_factory, aliases=("b",))
