"""Tests for the platform registry and make_platform."""

import pytest

from repro import (
    PlatformError,
    PlatformRegistry,
    ProcessPoolPlatform,
    SimulatedPlatform,
    ThreadPoolPlatform,
    available_backends,
    make_platform,
)


class TestDefaultRegistry:
    def test_all_builtin_backends_registered(self):
        assert {"simulated", "threads", "processes"} <= set(available_backends())

    @pytest.mark.parametrize(
        "name, cls",
        [
            ("simulated", SimulatedPlatform),
            ("threads", ThreadPoolPlatform),
            ("processes", ProcessPoolPlatform),
        ],
    )
    def test_make_platform_constructs_the_right_class(self, name, cls):
        platform = make_platform(name, parallelism=1)
        try:
            assert isinstance(platform, cls)
            assert platform.get_parallelism() == 1
        finally:
            platform.shutdown()

    @pytest.mark.parametrize(
        "alias, canonical_cls",
        [
            ("sim", SimulatedPlatform),
            ("threadpool", ThreadPoolPlatform),
            ("Thread", ThreadPoolPlatform),
            ("PROCESSPOOL", ProcessPoolPlatform),
            ("procs", ProcessPoolPlatform),
        ],
    )
    def test_aliases_and_case_insensitivity(self, alias, canonical_cls):
        platform = make_platform(alias, parallelism=1)
        try:
            assert isinstance(platform, canonical_cls)
        finally:
            platform.shutdown()

    def test_kwargs_forwarded_to_constructor(self):
        with make_platform("threads", parallelism=2, max_parallelism=5) as platform:
            assert platform.get_parallelism() == 2
            assert platform.max_parallelism == 5

    def test_unknown_backend_lists_available_names(self):
        with pytest.raises(PlatformError, match="processes.*simulated.*threads"):
            make_platform("gpu")


class TestCustomRegistry:
    def test_register_and_create(self):
        registry = PlatformRegistry()
        registry.register("sim", SimulatedPlatform, description="virtual")
        platform = registry.create("sim", parallelism=3)
        assert isinstance(platform, SimulatedPlatform)
        assert platform.get_parallelism() == 3
        assert registry.describe() == {"sim": "virtual"}
        assert "sim" in registry and "nope" not in registry

    def test_duplicate_names_rejected(self):
        registry = PlatformRegistry()
        registry.register("a", SimulatedPlatform, aliases=("b",))
        with pytest.raises(PlatformError):
            registry.register("a", ThreadPoolPlatform)
        with pytest.raises(PlatformError):
            registry.register("c", ThreadPoolPlatform, aliases=("b",))
