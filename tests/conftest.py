"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

from functools import partial

import pytest
from hypothesis import HealthCheck, settings, strategies as st

from repro import (
    Condition,
    DivideAndConquer,
    EventRecorder,
    Execute,
    Farm,
    For,
    Fork,
    If,
    Map,
    Merge,
    Pipe,
    Seq,
    SimulatedPlatform,
    Split,
    ThreadPoolPlatform,
    While,
)
from repro.runtime.costmodel import ConstantCostModel

# Keep hypothesis fast and deterministic in CI-like offline runs.
settings.register_profile(
    "repro",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
)
settings.load_profile("repro")


# ---------------------------------------------------------------------------
# platforms


@pytest.fixture
def sim():
    """Fresh zero-cost simulator with a recorder attached."""
    platform = SimulatedPlatform(parallelism=2)
    recorder = EventRecorder()
    platform.add_listener(recorder)
    platform.recorder = recorder  # convenience for tests
    return platform


@pytest.fixture
def sim_timed():
    """Simulator where every muscle costs one virtual second."""
    platform = SimulatedPlatform(parallelism=2, cost_model=ConstantCostModel(1.0))
    recorder = EventRecorder()
    platform.add_listener(recorder)
    platform.recorder = recorder
    return platform


@pytest.fixture
def pool():
    """Small real thread pool, shut down after the test."""
    platform = ThreadPoolPlatform(parallelism=2, max_parallelism=8)
    recorder = EventRecorder()
    platform.add_listener(recorder)
    platform.recorder = recorder
    yield platform
    platform.shutdown()


# ---------------------------------------------------------------------------
# deterministic integer-program skeletons (for semantics comparisons)
#
# Every generated program maps an int to an int, so results are directly
# comparable across the reference evaluator, the simulator and the pool.


def _leaf() -> Seq:
    return Seq(Execute(lambda v: v + 1, name="inc"))


def _build(node) -> object:
    kind = node[0]
    if kind == "seq":
        return Seq(Execute(lambda v, k=node[1]: v * 2 + k, name=f"leaf{node[1]}"))
    if kind == "farm":
        return Farm(_build(node[1]))
    if kind == "pipe":
        return Pipe(*[_build(c) for c in node[1]])
    if kind == "for":
        return For(node[1], _build(node[2]))
    if kind == "while":
        # A condition that returns True exactly n times, independent of the
        # value: guarantees termination for arbitrary generated bodies while
        # still exercising |fc| estimation.  Fresh per skeleton construction.
        n_trues = node[1] % 4

        def make_cond(n):
            state = {"left": n}

            def cond(_v):
                if state["left"] > 0:
                    state["left"] -= 1
                    return True
                return False

            return cond

        return While(make_cond(n_trues), _build(node[2]))
    if kind == "if":
        return If(lambda v, t=node[1]: v % 2 == t, _build(node[2]), _build(node[3]))
    if kind == "map":
        width = node[1]
        return Map(
            Split(lambda v, w=width: [v + i for i in range(w)], name=f"split{width}"),
            _build(node[2]),
            Merge(lambda rs: sum(rs) % 10_000_019, name="sum"),
        )
    if kind == "fork":
        branches = [_build(c) for c in node[1]]
        return Fork(
            Split(lambda v, n=len(branches): [v + i for i in range(n)], name="forksplit"),
            branches,
            Merge(lambda rs: sum(rs) % 10_000_019, name="sum"),
        )
    if kind == "dac":
        threshold = node[1]
        return DivideAndConquer(
            lambda v, t=threshold: v > t,
            Split(lambda v: [v // 2, v - v // 2 - 1], name="halve"),
            _build(node[2]),
            Merge(lambda rs: sum(rs) % 10_000_019, name="sum"),
        )
    raise AssertionError(f"unknown node {node!r}")


def _program_nodes(max_depth: int):
    """Hypothesis strategy for program descriptions (plain tuples)."""
    if max_depth <= 0:
        return st.tuples(st.just("seq"), st.integers(0, 3))
    sub = _program_nodes(max_depth - 1)
    return st.one_of(
        st.tuples(st.just("seq"), st.integers(0, 3)),
        st.tuples(st.just("farm"), sub),
        st.tuples(st.just("pipe"), st.lists(sub, min_size=2, max_size=3).map(tuple)),
        st.tuples(st.just("for"), st.integers(0, 3), sub),
        st.tuples(st.just("while"), st.integers(0, 40), sub),
        st.tuples(st.just("if"), st.integers(0, 1), sub, sub),
        st.tuples(st.just("map"), st.integers(1, 4), sub),
        st.tuples(st.just("fork"), st.lists(sub, min_size=1, max_size=3).map(tuple)),
        st.tuples(st.just("dac"), st.integers(5, 30), sub),
    )


#: Strategy producing (program-description, skeleton-builder) pairs; tests
#: call ``build_program(desc)`` to get fresh skeletons (fresh muscle uids).
program_descriptions = _program_nodes(max_depth=2)


def build_program(desc):
    """Construct a fresh skeleton from a description tuple."""
    return _build(desc)


# ---------------------------------------------------------------------------
# picklable integer programs (for process-backend semantics comparisons)
#
# The lambda-based builder above cannot run on ProcessPoolPlatform: lambdas
# and closures do not pickle.  This parallel builder uses module-level
# functions + functools.partial (both picklable), so the same program runs
# on *every* backend — including OS processes.  Muscles here are pure
# functions of their input, the other process-backend requirement (state
# mutated inside a worker never flows back to the parent); that is why the
# While node uses a value-driven bound instead of a stateful counter.


def px_leaf(v, k):
    return v * 2 + k


def px_inc(v):
    return v + 1


def px_iota(v, width):
    return [v + i for i in range(width)]


def px_sum_mod(rs):
    return sum(rs) % 10_000_019


def px_below(v, bound):
    return v < bound


def px_parity_is(v, t):
    return v % 2 == t


def px_gt(v, threshold):
    return v > threshold


def px_halve(v):
    return [v // 2, v - v // 2 - 1]


def _build_picklable(node) -> object:
    kind = node[0]
    if kind == "seq":
        return Seq(Execute(partial(px_leaf, k=node[1]), name=f"pleaf{node[1]}"))
    if kind == "farm":
        return Farm(_build_picklable(node[1]))
    if kind == "pipe":
        return Pipe(*[_build_picklable(c) for c in node[1]])
    if kind == "for":
        return For(node[1], _build_picklable(node[2]))
    if kind == "while":
        # Value-driven termination: every picklable muscle maps v >= 0 to
        # a value >= v (px_leaf doubles, splits fan out non-negatively,
        # merges sum at least one such term), so piping the generated
        # sub-program into px_inc makes each iteration strictly increase
        # the value and ``v < bound`` flips after at most ``bound`` steps.
        # A *stateful* countdown condition (as in the lambda builder
        # above) would silently never terminate on the process backend —
        # worker-side state mutations don't reach the parent.
        return While(
            Condition(partial(px_below, bound=node[1]), name=f"pbelow{node[1]}"),
            Pipe(_build_picklable(node[2]), Seq(Execute(px_inc, name="pinc"))),
        )
    if kind == "if":
        return If(
            Condition(partial(px_parity_is, t=node[1]), name=f"pparity{node[1]}"),
            _build_picklable(node[2]),
            _build_picklable(node[3]),
        )
    if kind == "map":
        width = node[1]
        return Map(
            Split(partial(px_iota, width=width), name=f"psplit{width}"),
            _build_picklable(node[2]),
            Merge(px_sum_mod, name="psum"),
        )
    if kind == "fork":
        branches = [_build_picklable(c) for c in node[1]]
        return Fork(
            Split(partial(px_iota, width=len(branches)), name="pforksplit"),
            branches,
            Merge(px_sum_mod, name="psum"),
        )
    if kind == "dac":
        return DivideAndConquer(
            Condition(partial(px_gt, threshold=node[1]), name=f"pgt{node[1]}"),
            Split(px_halve, name="phalve"),
            _build_picklable(node[2]),
            Merge(px_sum_mod, name="psum"),
        )
    raise AssertionError(f"unknown node {node!r}")


def _picklable_program_nodes(max_depth: int):
    """Strategy for picklable program descriptions (plain tuples)."""
    if max_depth <= 0:
        return st.tuples(st.just("seq"), st.integers(0, 3))
    sub = _picklable_program_nodes(max_depth - 1)
    return st.one_of(
        st.tuples(st.just("seq"), st.integers(0, 3)),
        st.tuples(st.just("farm"), sub),
        st.tuples(st.just("pipe"), st.lists(sub, min_size=2, max_size=3).map(tuple)),
        st.tuples(st.just("for"), st.integers(0, 3), sub),
        st.tuples(st.just("while"), st.integers(0, 16), sub),
        st.tuples(st.just("if"), st.integers(0, 1), sub, sub),
        st.tuples(st.just("map"), st.integers(1, 4), sub),
        st.tuples(st.just("fork"), st.lists(sub, min_size=1, max_size=3).map(tuple)),
        st.tuples(st.just("dac"), st.integers(5, 30), sub),
    )


#: Strategy for programs whose muscles pickle — runnable on every backend.
picklable_program_descriptions = _picklable_program_nodes(max_depth=2)


def build_picklable_program(desc):
    """Construct a fresh, fully picklable skeleton from a description."""
    return _build_picklable(desc)


# ---------------------------------------------------------------------------
# picklable sleepy muscles + warm-start snapshots (multi-tenant service tests)
#
# Sleep-bound leaves release the GIL, so shared-platform concurrency is
# observable on the thread pool; module-level functions + partials keep the
# same programs runnable on the process pool.


def px_sleep_echo(v, duration):
    import time

    time.sleep(duration)
    return v


def px_replicate(v, width):
    return [v] * width


def px_sum(rs):
    return sum(rs)


def make_warm_snapshot(program, times, cards=None):
    """Estimate snapshot by muscle name (service warm-start helper)."""
    from repro.core.persistence import snapshot_from_names

    return snapshot_from_names(program, times, cards)


def sleepy_map_program(width, duration):
    """Picklable ``map(replicate, seq(sleep), sum)`` — runs on any backend."""
    return Map(
        Split(partial(px_replicate, width=width), name="svc_split"),
        Seq(Execute(partial(px_sleep_echo, duration=duration), name="svc_leaf")),
        Merge(px_sum, name="svc_merge"),
    )


def sleepy_chain_program(stages, duration):
    """Picklable serial pipe of sleeps — no parallelism can shrink it."""
    return Pipe(
        *[
            Seq(Execute(partial(px_sleep_echo, duration=duration), name=f"svc_stage{i}"))
            for i in range(stages)
        ]
    )


def sleepy_map_snapshot(program, width, duration):
    """Warm snapshot matching :func:`sleepy_map_program`'s muscles."""
    return make_warm_snapshot(
        program,
        times={"svc_split": 1e-4, "svc_leaf": duration, "svc_merge": 1e-4},
        cards={"svc_split": width},
    )


def sleepy_chain_snapshot(program, stages, duration):
    """Warm snapshot matching :func:`sleepy_chain_program`'s muscles."""
    return make_warm_snapshot(
        program, times={f"svc_stage{i}": duration for i in range(stages)}
    )


@pytest.fixture
def paper_map_program():
    """The paper's ``map(fs, map(fs, seq(fe), fm), fm)`` on integer lists."""
    fs1 = Split(lambda xs: [xs[i::3] for i in range(3)], name="fs1")
    fs2 = Split(lambda xs: [xs[i::2] for i in range(2)], name="fs2")
    fe = Execute(lambda xs: sum(xs), name="fe")
    fm = Merge(lambda rs: sum(rs), name="fm")
    return Map(fs1, Map(fs2, Seq(fe), fm), fm)
